package catalog

import "cosmo/internal/relations"

// it builds an Intent literal tersely.
func it(r relations.Relation, tail string) Intent { return Intent{Relation: r, Tail: tail} }

// worldData is the curated synthetic world: product types across the 18
// paper categories, each with ground-truth intents and complement links.
// Complementary types share at least one intent — that shared intent is
// the "reason" behind intentional co-purchases, mirroring Figure 1 of the
// paper ("to attend a wedding party, we need to buy normal clothes").
var worldData = []ProductType{
	// ----- Clothing, Shoes & Jewelry -----
	{"wedding suit", Clothing, []Intent{
		it(relations.UsedForEve, "attend a wedding party"),
		it(relations.IsA, "normal suit"),
		it(relations.UsedBy, "groom"),
	}, []string{"dress shoes", "tie"}},
	{"dress shoes", Clothing, []Intent{
		it(relations.UsedForEve, "attend a wedding party"),
		it(relations.UsedForFunc, "complete a formal outfit"),
	}, []string{"wedding suit"}},
	{"tie", Clothing, []Intent{
		it(relations.UsedForEve, "attend a wedding party"),
		it(relations.UsedWith, "formal shirt"),
	}, []string{"wedding suit"}},
	{"winter jacket", Clothing, []Intent{
		it(relations.UsedForFunc, "keep warm"),
		it(relations.UsedOn, "late winter"),
	}, []string{"winter boots", "wool scarf"}},
	{"winter boots", Clothing, []Intent{
		it(relations.UsedForFunc, "keep warm"),
		it(relations.UsedForEve, "winter camping"),
		it(relations.UsedOn, "late winter"),
	}, []string{"winter jacket"}},
	{"wool scarf", Clothing, []Intent{
		it(relations.UsedForFunc, "keep warm"),
		it(relations.UsedOn, "late winter"),
	}, []string{"winter jacket"}},
	{"running shorts", Clothing, []Intent{
		it(relations.UsedForEve, "run a marathon"),
		it(relations.UsedBy, "runners"),
	}, []string{"running shoes"}},
	{"cycling jersey", Clothing, []Intent{
		it(relations.UsedForEve, "biking on trails"),
		it(relations.UsedBy, "cyclists"),
	}, []string{"bike helmet"}},

	// ----- Sports & Outdoors -----
	{"tent", Sports, []Intent{
		it(relations.UsedForEve, "camping"),
		it(relations.UsedForEve, "camping in the mountains"),
		it(relations.CapableOf, "sheltering four people"),
	}, []string{"sleeping bag", "camping stove", "air mattress"}},
	{"sleeping bag", Sports, []Intent{
		it(relations.UsedForEve, "camping in the mountains"),
		it(relations.UsedForFunc, "keep warm"),
	}, []string{"tent", "air mattress"}},
	{"air mattress", Sports, []Intent{
		it(relations.UsedForEve, "camping in the mountains"),
		it(relations.UsedForEve, "lakeside camping"),
		it(relations.CapableOf, "sleeping two adults"),
	}, []string{"tent"}},
	{"camping stove", Sports, []Intent{
		it(relations.UsedForEve, "camping in the mountains"),
		it(relations.UsedTo, "cook meals outdoors"),
	}, []string{"tent"}},
	{"running shoes", Sports, []Intent{
		it(relations.UsedForEve, "running"),
		it(relations.UsedForEve, "run a marathon"),
		it(relations.CapableOf, "providing arch support"),
		it(relations.UsedBy, "runners"),
	}, []string{"running shorts", "fitness tracker"}},
	{"bike helmet", Sports, []Intent{
		it(relations.UsedForEve, "biking on trails"),
		it(relations.UsedForFunc, "protect the head"),
	}, []string{"cycling jersey"}},
	{"yoga mat", Sports, []Intent{
		it(relations.UsedForEve, "practice yoga"),
		it(relations.UsedInLoc, "home gym"),
	}, []string{"foam roller"}},
	{"foam roller", Sports, []Intent{
		it(relations.UsedForEve, "practice yoga"),
		it(relations.UsedForFunc, "relieve muscle soreness"),
	}, []string{"yoga mat"}},
	{"fishing rod", Sports, []Intent{
		it(relations.UsedForEve, "fishing at the lake"),
		it(relations.UsedBy, "anglers"),
	}, []string{"tackle box"}},
	{"tackle box", Sports, []Intent{
		it(relations.UsedForEve, "fishing at the lake"),
		it(relations.CapableOf, "organizing lures"),
	}, []string{"fishing rod"}},

	// ----- Home & Kitchen -----
	{"potato peeler", HomeKitchen, []Intent{
		it(relations.UsedForFunc, "peeling potatoes"),
		it(relations.UsedInLoc, "kitchen"),
	}, []string{"chef knife", "cutting board"}},
	{"chef knife", HomeKitchen, []Intent{
		it(relations.UsedTo, "chop vegetables"),
		it(relations.UsedInLoc, "kitchen"),
		it(relations.UsedTo, "keep blades sharp"),
	}, []string{"cutting board", "knife sharpener"}},
	{"cutting board", HomeKitchen, []Intent{
		it(relations.UsedTo, "chop vegetables"),
		it(relations.UsedInLoc, "kitchen"),
		it(relations.UsedWith, "chef knife"),
	}, []string{"chef knife"}},
	{"snack bowl", HomeKitchen, []Intent{
		it(relations.CapableOf, "holding snacks"),
		it(relations.UsedForEve, "host a movie night"),
	}, []string{"serving tray"}},
	{"serving tray", HomeKitchen, []Intent{
		it(relations.UsedForEve, "host a movie night"),
		it(relations.CapableOf, "carrying drinks"),
	}, []string{"snack bowl"}},
	{"espresso machine", HomeKitchen, []Intent{
		it(relations.UsedTo, "brew espresso at home"),
		it(relations.UsedBy, "coffee lovers"),
	}, []string{"coffee grinder", "milk frother"}},
	{"coffee grinder", HomeKitchen, []Intent{
		it(relations.UsedTo, "brew espresso at home"),
		it(relations.CapableOf, "grinding fresh beans"),
	}, []string{"espresso machine"}},
	{"milk frother", HomeKitchen, []Intent{
		it(relations.UsedTo, "brew espresso at home"),
		it(relations.UsedTo, "make latte art"),
	}, []string{"espresso machine"}},
	{"bed sheets", HomeKitchen, []Intent{
		it(relations.UsedInLoc, "bedroom"),
		it(relations.UsedForFunc, "sleep comfortably"),
	}, []string{"pillow"}},
	{"pillow", HomeKitchen, []Intent{
		it(relations.UsedInLoc, "bedroom"),
		it(relations.UsedForFunc, "sleep comfortably"),
		it(relations.UsedInBody, "neck"),
	}, []string{"bed sheets"}},

	// ----- Patio, Lawn & Garden -----
	{"patio chair", PatioGarden, []Intent{
		it(relations.CapableOf, "hanging out in the backyard"),
		it(relations.UsedInLoc, "patio"),
	}, []string{"patio table", "outdoor umbrella"}},
	{"patio table", PatioGarden, []Intent{
		it(relations.CapableOf, "hanging out in the backyard"),
		it(relations.UsedInLoc, "patio"),
	}, []string{"patio chair"}},
	{"outdoor umbrella", PatioGarden, []Intent{
		it(relations.CapableOf, "hanging out in the backyard"),
		it(relations.UsedForFunc, "provide shade"),
	}, []string{"patio table"}},
	{"garden hose", PatioGarden, []Intent{
		it(relations.UsedTo, "water the garden"),
		it(relations.UsedBy, "gardeners"),
	}, []string{"sprinkler"}},
	{"sprinkler", PatioGarden, []Intent{
		it(relations.UsedTo, "water the garden"),
		it(relations.UsedInLoc, "front lawn"),
	}, []string{"garden hose"}},
	{"fence post", PatioGarden, []Intent{
		it(relations.UsedTo, "build a fence"),
		it(relations.UsedInLoc, "backyard"),
	}, []string{"post hole digger"}},
	{"post hole digger", PatioGarden, []Intent{
		it(relations.UsedTo, "build a fence"),
		it(relations.CapableOf, "digging a hole"),
	}, []string{"fence post"}},
	{"bird feeder", PatioGarden, []Intent{
		it(relations.UsedTo, "attract songbirds"),
		it(relations.UsedBy, "bird watchers"),
	}, []string{"bird seed"}},

	// ----- Tools & Home Improvement -----
	{"knife sharpener", Tools, []Intent{
		it(relations.UsedForFunc, "sharpening scissors"),
		it(relations.UsedTo, "keep blades sharp"),
	}, []string{"chef knife"}},
	{"cordless drill", Tools, []Intent{
		it(relations.UsedTo, "hang shelves"),
		it(relations.UsedBy, "DIY enthusiasts"),
	}, []string{"drill bit set", "wall anchors"}},
	{"drill bit set", Tools, []Intent{
		it(relations.UsedTo, "hang shelves"),
		it(relations.UsedWith, "cordless drill"),
	}, []string{"cordless drill"}},
	{"wall anchors", Tools, []Intent{
		it(relations.UsedTo, "hang shelves"),
		it(relations.CapableOf, "holding a lot of weight"),
	}, []string{"cordless drill"}},
	{"paint roller", Tools, []Intent{
		it(relations.UsedTo, "repaint the living room"),
		it(relations.UsedWith, "paint tray"),
	}, []string{"paint tray", "painters tape"}},
	{"paint tray", Tools, []Intent{
		it(relations.UsedTo, "repaint the living room"),
	}, []string{"paint roller"}},
	{"painters tape", Tools, []Intent{
		it(relations.UsedTo, "repaint the living room"),
		it(relations.UsedForFunc, "protect the trim"),
	}, []string{"paint roller"}},
	{"work gloves", Tools, []Intent{
		it(relations.UsedForFunc, "protect the hands"),
		it(relations.UsedBy, "mechanics"),
	}, []string{"safety glasses"}},
	{"safety glasses", Tools, []Intent{
		it(relations.UsedForFunc, "protect the eyes"),
		it(relations.UsedBy, "mechanics"),
	}, []string{"work gloves"}},

	// ----- Musical Instruments -----
	{"acoustic guitar", Musical, []Intent{
		it(relations.UsedForEve, "wedding party"),
		it(relations.UsedBy, "musicians"),
	}, []string{"guitar strings", "guitar stand"}},
	{"guitar strings", Musical, []Intent{
		it(relations.UsedWith, "acoustic guitar"),
		it(relations.UsedTo, "restring the guitar"),
	}, []string{"acoustic guitar"}},
	{"guitar stand", Musical, []Intent{
		it(relations.UsedWith, "acoustic guitar"),
		it(relations.CapableOf, "holding the guitar upright"),
	}, []string{"acoustic guitar"}},
	{"digital piano", Musical, []Intent{
		it(relations.UsedTo, "practice piano at home"),
		it(relations.UsedBy, "students"),
	}, []string{"piano bench", "sustain pedal"}},
	{"piano bench", Musical, []Intent{
		it(relations.UsedTo, "practice piano at home"),
		it(relations.UsedWith, "digital piano"),
	}, []string{"digital piano"}},
	{"sustain pedal", Musical, []Intent{
		it(relations.UsedTo, "practice piano at home"),
		it(relations.UsedWith, "digital piano"),
	}, []string{"digital piano"}},
	{"microphone", Musical, []Intent{
		it(relations.UsedTo, "record vocals"),
		it(relations.UsedInLoc, "home studio"),
	}, []string{"mic stand"}},
	{"mic stand", Musical, []Intent{
		it(relations.UsedTo, "record vocals"),
		it(relations.UsedWith, "microphone"),
	}, []string{"microphone"}},

	// ----- Industrial & Scientific -----
	{"storage rack", Industrial, []Intent{
		it(relations.CapableOf, "holding a lot of weight"),
		it(relations.UsedInLoc, "warehouse"),
	}, []string{"storage bins"}},
	{"storage bins", Industrial, []Intent{
		it(relations.CapableOf, "organizing small parts"),
		it(relations.UsedInLoc, "warehouse"),
		it(relations.CapableOf, "holding a lot of weight"),
	}, []string{"storage rack"}},
	{"digital caliper", Industrial, []Intent{
		it(relations.UsedTo, "measure parts precisely"),
		it(relations.UsedBy, "machinists"),
	}, []string{"micrometer"}},
	{"micrometer", Industrial, []Intent{
		it(relations.UsedTo, "measure parts precisely"),
		it(relations.UsedBy, "machinists"),
	}, []string{"digital caliper"}},
	{"lab coat", Industrial, []Intent{
		it(relations.UsedBy, "lab technicians"),
		it(relations.UsedForFunc, "protect clothing from spills"),
	}, []string{"nitrile gloves"}},
	{"nitrile gloves", Industrial, []Intent{
		it(relations.UsedBy, "lab technicians"),
		it(relations.UsedForFunc, "protect the hands"),
	}, []string{"lab coat"}},
	{"packing tape", Industrial, []Intent{
		it(relations.UsedTo, "seal shipping boxes"),
		it(relations.UsedWith, "shipping boxes"),
	}, []string{"shipping boxes"}},
	{"shipping boxes", Industrial, []Intent{
		it(relations.UsedTo, "seal shipping boxes"),
		it(relations.CapableOf, "protecting items in transit"),
	}, []string{"packing tape"}},

	// ----- Automotive -----
	{"car jack", Automotive, []Intent{
		it(relations.UsedTo, "change a flat tire"),
		it(relations.CapableOf, "lifting the car safely"),
	}, []string{"lug wrench"}},
	{"lug wrench", Automotive, []Intent{
		it(relations.UsedTo, "change a flat tire"),
	}, []string{"car jack"}},
	{"car wax", Automotive, []Intent{
		it(relations.UsedTo, "polish the car"),
		it(relations.UsedWith, "microfiber towels"),
	}, []string{"microfiber towels"}},
	{"microfiber towels", Automotive, []Intent{
		it(relations.UsedTo, "polish the car"),
		it(relations.CapableOf, "cleaning without scratches"),
	}, []string{"car wax"}},
	{"dash camera", Automotive, []Intent{
		it(relations.UsedTo, "record the road"),
		it(relations.UsedBy, "commuters"),
		it(relations.UsedWith, "memory card"),
	}, []string{"memory card"}},
	{"floor mats", Automotive, []Intent{
		it(relations.UsedForFunc, "protect the car floor"),
		it(relations.UsedInLoc, "car interior"),
	}, []string{"trunk liner"}},
	{"trunk liner", Automotive, []Intent{
		it(relations.UsedForFunc, "protect the car floor"),
		it(relations.UsedInLoc, "car interior"),
	}, []string{"floor mats"}},
	{"jumper cables", Automotive, []Intent{
		it(relations.UsedTo, "jump start a dead battery"),
		it(relations.UsedBy, "commuters"),
	}, []string{"roadside kit"}},
	{"roadside kit", Automotive, []Intent{
		it(relations.UsedTo, "jump start a dead battery"),
		it(relations.UsedForEve, "road trip emergencies"),
	}, []string{"jumper cables"}},

	// ----- Electronics -----
	{"camera case", Electronics, []Intent{
		it(relations.CapableOf, "providing protection for camera"),
		it(relations.UsedWith, "mirrorless camera"),
	}, []string{"screen protector glass", "mirrorless camera"}},
	{"screen protector glass", Electronics, []Intent{
		it(relations.CapableOf, "providing protection for camera"),
		it(relations.UsedForFunc, "prevent screen scratches"),
	}, []string{"camera case"}},
	{"mirrorless camera", Electronics, []Intent{
		it(relations.UsedTo, "shoot travel photos"),
		it(relations.UsedBy, "photographers"),
	}, []string{"camera case", "memory card", "tripod"}},
	{"memory card", Electronics, []Intent{
		it(relations.CapableOf, "storing thousands of photos"),
		it(relations.UsedWith, "mirrorless camera"),
	}, []string{"mirrorless camera"}},
	{"tripod", Electronics, []Intent{
		it(relations.UsedTo, "shoot travel photos"),
		it(relations.CapableOf, "holding the camera steady"),
	}, []string{"mirrorless camera"}},
	{"smart watch", Electronics, []Intent{
		it(relations.IsA, "intelligent watch"),
		it(relations.CapableOf, "tracking calories burned"),
		it(relations.UsedBy, "runners"),
	}, []string{"fitness tracker", "watch band"}},
	{"fitness tracker", Electronics, []Intent{
		it(relations.CapableOf, "tracking calories burned"),
		it(relations.UsedForEve, "run a marathon"),
	}, []string{"smart watch", "running shoes"}},
	{"watch band", Electronics, []Intent{
		it(relations.UsedWith, "smart watch"),
	}, []string{"smart watch"}},
	{"noise cancelling headphones", Electronics, []Intent{
		it(relations.UsedForFunc, "block out noise"),
		it(relations.UsedBy, "travelers"),
	}, []string{"headphone case"}},
	{"headphone case", Electronics, []Intent{
		it(relations.UsedTo, "protect the headset"),
		it(relations.UsedWith, "noise cancelling headphones"),
	}, []string{"noise cancelling headphones"}},
	{"surface cover", Electronics, []Intent{
		it(relations.UsedWith, "tablet computer"),
		it(relations.UsedForFunc, "prevent screen scratches"),
	}, []string{"tablet computer"}},
	{"tablet computer", Electronics, []Intent{
		it(relations.UsedTo, "watch movies in bed"),
		it(relations.UsedBy, "students"),
	}, []string{"surface cover"}},

	// ----- Baby Products -----
	{"baby booties", Baby, []Intent{
		it(relations.CapableOf, "keeping the baby's feet dry"),
		it(relations.UsedBy, "babies"),
	}, []string{"baby socks"}},
	{"baby socks", Baby, []Intent{
		it(relations.CapableOf, "keeping the baby's feet dry"),
		it(relations.UsedBy, "babies"),
	}, []string{"baby booties"}},
	{"baby monitor", Baby, []Intent{
		it(relations.CapableOf, "watching the baby at night"),
		it(relations.UsedBy, "parents"),
		it(relations.UsedInLoc, "nursery"),
	}, []string{"crib"}},
	{"crib", Baby, []Intent{
		it(relations.UsedInLoc, "nursery"),
		it(relations.CapableOf, "keeping the baby safe while sleeping"),
	}, []string{"crib mattress", "baby monitor"}},
	{"crib mattress", Baby, []Intent{
		it(relations.UsedInLoc, "nursery"),
		it(relations.UsedWith, "crib"),
	}, []string{"crib"}},
	{"diaper bag", Baby, []Intent{
		it(relations.CapableOf, "carrying baby essentials"),
		it(relations.UsedBy, "parents"),
	}, []string{"changing pad"}},
	{"changing pad", Baby, []Intent{
		it(relations.CapableOf, "carrying baby essentials"),
		it(relations.UsedWith, "diaper bag"),
	}, []string{"diaper bag"}},
	{"nursing pillow", Baby, []Intent{
		it(relations.UsedBy, "pregnant women"),
		it(relations.XIsA, "pregnant women"),
		it(relations.UsedForFunc, "support the baby while feeding"),
	}, []string{"burp cloths"}},
	{"burp cloths", Baby, []Intent{
		it(relations.UsedForFunc, "support the baby while feeding"),
		it(relations.UsedBy, "parents"),
	}, []string{"nursing pillow"}},

	// ----- Arts, Crafts & Sewing -----
	{"fabric stamp", ArtsCrafts, []Intent{
		it(relations.UsedForFunc, "stamping on fabric"),
		it(relations.UsedBy, "crafters"),
	}, []string{"fabric ink pad"}},
	{"fabric ink pad", ArtsCrafts, []Intent{
		it(relations.UsedForFunc, "stamping on fabric"),
		it(relations.UsedWith, "fabric stamp"),
	}, []string{"fabric stamp"}},
	{"sewing machine", ArtsCrafts, []Intent{
		it(relations.UsedTo, "sew a quilt"),
		it(relations.UsedBy, "quilters"),
	}, []string{"quilting thread", "fabric scissors"}},
	{"quilting thread", ArtsCrafts, []Intent{
		it(relations.UsedTo, "sew a quilt"),
		it(relations.UsedWith, "sewing machine"),
	}, []string{"sewing machine"}},
	{"fabric scissors", ArtsCrafts, []Intent{
		it(relations.UsedTo, "sew a quilt"),
		it(relations.CapableOf, "cutting fabric cleanly"),
	}, []string{"sewing machine"}},
	{"acrylic paint set", ArtsCrafts, []Intent{
		it(relations.UsedTo, "paint on canvas"),
		it(relations.UsedBy, "beginners"),
	}, []string{"canvas panels", "paint brushes"}},
	{"canvas panels", ArtsCrafts, []Intent{
		it(relations.UsedTo, "paint on canvas"),
	}, []string{"acrylic paint set"}},
	{"paint brushes", ArtsCrafts, []Intent{
		it(relations.UsedTo, "paint on canvas"),
		it(relations.UsedWith, "acrylic paint set"),
	}, []string{"acrylic paint set"}},

	// ----- Health & Household -----
	{"face towel", Health, []Intent{
		it(relations.UsedForFunc, "dry face"),
		it(relations.UsedInLoc, "bathroom"),
	}, []string{"facial cleanser"}},
	{"facial cleanser", Health, []Intent{
		it(relations.UsedForFunc, "dry face"),
		it(relations.UsedInBody, "sensitive skin"),
	}, []string{"face towel", "moisturizer"}},
	{"moisturizer", Health, []Intent{
		it(relations.CapableOf, "hydrating the skin"),
		it(relations.UsedInBody, "sensitive skin"),
	}, []string{"facial cleanser", "sunscreen"}},
	{"sunscreen", Health, []Intent{
		it(relations.CapableOf, "hydrating the skin"),
		it(relations.UsedForFunc, "protect skin from the sun"),
		it(relations.UsedOn, "summer"),
	}, []string{"moisturizer"}},
	{"herbal tea", Health, []Intent{
		it(relations.XInterestdIn, "herbal medicine"),
		it(relations.UsedTo, "relax before bed"),
	}, []string{"tea infuser"}},
	{"tea infuser", Health, []Intent{
		it(relations.XInterestdIn, "herbal medicine"),
		it(relations.UsedWith, "herbal tea"),
	}, []string{"herbal tea"}},
	{"vitamin supplements", Health, []Intent{
		it(relations.XInterestdIn, "herbal medicine"),
		it(relations.UsedTo, "support the immune system"),
		it(relations.UsedBy, "seniors"),
	}, []string{"pill organizer"}},
	{"pill organizer", Health, []Intent{
		it(relations.UsedBy, "seniors"),
		it(relations.CapableOf, "sorting weekly medication"),
	}, []string{"vitamin supplements"}},
	{"blister bandages", Health, []Intent{
		it(relations.UsedTo, "prevent blisters"),
		it(relations.UsedInBody, "feet"),
		it(relations.UsedForEve, "run a marathon"),
	}, []string{"running shoes"}},

	// ----- Toys & Games -----
	{"toy drone", Toys, []Intent{
		it(relations.CapableOf, "flying in the air"),
		it(relations.UsedBy, "kids"),
	}, []string{"drone batteries"}},
	{"drone batteries", Toys, []Intent{
		it(relations.CapableOf, "flying in the air"),
		it(relations.UsedWith, "toy drone"),
	}, []string{"toy drone"}},
	{"board game", Toys, []Intent{
		it(relations.UsedForEve, "family game night"),
		it(relations.UsedBy, "kids"),
	}, []string{"card sleeves"}},
	{"card sleeves", Toys, []Intent{
		it(relations.UsedForEve, "family game night"),
		it(relations.UsedForFunc, "protect the cards"),
	}, []string{"board game"}},
	{"building blocks", Toys, []Intent{
		it(relations.UsedBy, "kids"),
		it(relations.CapableOf, "developing motor skills"),
	}, []string{"block table"}},
	{"block table", Toys, []Intent{
		it(relations.UsedBy, "kids"),
		it(relations.UsedWith, "building blocks"),
	}, []string{"building blocks"}},
	{"kite", Toys, []Intent{
		it(relations.CapableOf, "flying in the air"),
		it(relations.UsedForEve, "a day at the beach"),
	}, []string{"kite string"}},
	{"kite string", Toys, []Intent{
		it(relations.CapableOf, "flying in the air"),
		it(relations.UsedWith, "kite"),
	}, []string{"kite"}},

	// ----- Video Games -----
	{"gaming headset", VideoGames, []Intent{
		it(relations.UsedBy, "gamers"),
		it(relations.UsedTo, "chat with teammates"),
	}, []string{"headset stand", "gaming controller"}},
	{"headset stand", VideoGames, []Intent{
		it(relations.UsedTo, "protect the headset"),
		it(relations.UsedWith, "gaming headset"),
	}, []string{"gaming headset"}},
	{"gaming controller", VideoGames, []Intent{
		it(relations.UsedBy, "gamers"),
		it(relations.UsedTo, "play racing games"),
	}, []string{"controller charger"}},
	{"controller charger", VideoGames, []Intent{
		it(relations.UsedBy, "gamers"),
		it(relations.UsedWith, "gaming controller"),
	}, []string{"gaming controller"}},
	{"gaming chair", VideoGames, []Intent{
		it(relations.UsedBy, "gamers"),
		it(relations.CapableOf, "supporting long sessions"),
	}, []string{"gaming desk"}},
	{"gaming desk", VideoGames, []Intent{
		it(relations.UsedBy, "gamers"),
		it(relations.UsedInLoc, "game room"),
	}, []string{"gaming chair"}},

	// ----- Grocery & Gourmet Food -----
	{"russet potatoes", Grocery, []Intent{
		it(relations.UsedTo, "make potato chips"),
		it(relations.UsedTo, "cook meals outdoors"),
	}, []string{"frying oil"}},
	{"frying oil", Grocery, []Intent{
		it(relations.UsedTo, "make potato chips"),
	}, []string{"russet potatoes"}},
	{"pancake mix", Grocery, []Intent{
		it(relations.UsedForEve, "weekend family breakfast"),
	}, []string{"maple syrup"}},
	{"maple syrup", Grocery, []Intent{
		it(relations.UsedForEve, "weekend family breakfast"),
		it(relations.UsedWith, "pancake mix"),
	}, []string{"pancake mix"}},
	{"espresso beans", Grocery, []Intent{
		it(relations.UsedTo, "brew espresso at home"),
		it(relations.UsedBy, "coffee lovers"),
	}, []string{"espresso machine"}},
	{"trail mix", Grocery, []Intent{
		it(relations.UsedForEve, "hiking in the mountains"),
		it(relations.CapableOf, "providing quick energy"),
	}, []string{"water bottle"}},
	{"water bottle", Grocery, []Intent{
		it(relations.UsedForEve, "hiking in the mountains"),
		it(relations.CapableOf, "keeping drinks cold"),
	}, []string{"trail mix"}},
	{"green tea", Grocery, []Intent{
		it(relations.XInterestdIn, "herbal medicine"),
		it(relations.UsedTo, "relax before bed"),
	}, []string{"tea infuser"}},

	// ----- Office Products -----
	{"fountain pen", Office, []Intent{
		it(relations.UsedForFunc, "writing down important information"),
		it(relations.UsedBy, "professionals"),
	}, []string{"notebook", "ink bottle"}},
	{"notebook", Office, []Intent{
		it(relations.UsedForFunc, "writing down important information"),
		it(relations.UsedBy, "students"),
	}, []string{"fountain pen"}},
	{"ink bottle", Office, []Intent{
		it(relations.UsedWith, "fountain pen"),
	}, []string{"fountain pen"}},
	{"standing desk", Office, []Intent{
		it(relations.UsedInLoc, "home office"),
		it(relations.CapableOf, "improving posture"),
	}, []string{"monitor arm", "desk mat"}},
	{"monitor arm", Office, []Intent{
		it(relations.UsedInLoc, "home office"),
		it(relations.UsedWith, "standing desk"),
	}, []string{"standing desk"}},
	{"desk mat", Office, []Intent{
		it(relations.UsedInLoc, "home office"),
		it(relations.UsedForFunc, "protect the desk surface"),
	}, []string{"standing desk"}},
	{"label maker", Office, []Intent{
		it(relations.UsedTo, "organize the filing cabinet"),
		it(relations.UsedBy, "office managers"),
	}, []string{"label tape"}},
	{"label tape", Office, []Intent{
		it(relations.UsedTo, "organize the filing cabinet"),
		it(relations.UsedWith, "label maker"),
	}, []string{"label maker"}},

	// ----- Pet Supplies -----
	{"dog leash", PetSupplies, []Intent{
		it(relations.UsedForEve, "walking the dog"),
		it(relations.UsedBy, "dog owner"),
	}, []string{"dog harness", "dog treats"}},
	{"dog harness", PetSupplies, []Intent{
		it(relations.UsedForEve, "walking the dog"),
		it(relations.UsedBy, "dog owner"),
	}, []string{"dog leash"}},
	{"dog treats", PetSupplies, []Intent{
		it(relations.UsedForEve, "walking the dog"),
		it(relations.UsedTo, "reward good behavior"),
	}, []string{"dog leash"}},
	{"cat tree", PetSupplies, []Intent{
		it(relations.UsedBy, "cat owner"),
		it(relations.CapableOf, "keeping the cat entertained"),
	}, []string{"cat scratcher"}},
	{"cat scratcher", PetSupplies, []Intent{
		it(relations.UsedBy, "cat owner"),
		it(relations.UsedForFunc, "protect the furniture"),
	}, []string{"cat tree"}},
	{"aquarium filter", PetSupplies, []Intent{
		it(relations.UsedTo, "keep the tank water clean"),
		it(relations.UsedWith, "fish tank"),
	}, []string{"fish tank"}},
	{"fish tank", PetSupplies, []Intent{
		it(relations.UsedTo, "keep the tank water clean"),
		it(relations.UsedInLoc, "living room"),
	}, []string{"aquarium filter"}},
	{"bird seed", PetSupplies, []Intent{
		it(relations.UsedTo, "attract songbirds"),
		it(relations.UsedWith, "bird feeder"),
	}, []string{"bird feeder"}},

	// ----- Others -----
	{"luggage set", Others, []Intent{
		it(relations.UsedForEve, "international travel"),
		it(relations.UsedBy, "travelers"),
	}, []string{"luggage tags", "packing cubes"}},
	{"luggage tags", Others, []Intent{
		it(relations.UsedForEve, "international travel"),
		it(relations.UsedWith, "luggage set"),
	}, []string{"luggage set"}},
	{"packing cubes", Others, []Intent{
		it(relations.UsedForEve, "international travel"),
		it(relations.CapableOf, "organizing clothes in a suitcase"),
	}, []string{"luggage set"}},
	{"picnic blanket", Others, []Intent{
		it(relations.UsedForEve, "a day at the beach"),
		it(relations.UsedInLoc, "park"),
	}, []string{"cooler bag"}},
	{"cooler bag", Others, []Intent{
		it(relations.UsedForEve, "a day at the beach"),
		it(relations.CapableOf, "keeping drinks cold"),
	}, []string{"picnic blanket"}},
	{"tennis racket", Others, []Intent{
		it(relations.XWant, "play tennis"),
		it(relations.UsedBy, "beginners"),
	}, []string{"tennis balls"}},
	{"tennis balls", Others, []Intent{
		it(relations.XWant, "play tennis"),
		it(relations.UsedWith, "tennis racket"),
	}, []string{"tennis racket"}},
	{"umbrella", Others, []Intent{
		it(relations.UsedForFunc, "stay dry in the rain"),
		it(relations.UsedOn, "rainy days"),
	}, []string{"rain boots"}},
	{"rain boots", Others, []Intent{
		it(relations.UsedForFunc, "stay dry in the rain"),
		it(relations.UsedOn, "rainy days"),
	}, []string{"umbrella"}},
}
