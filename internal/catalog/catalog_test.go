package catalog

import (
	"strings"
	"testing"

	"cosmo/internal/relations"
)

func TestGenerateCoversAllCategories(t *testing.T) {
	c := Generate(DefaultConfig())
	for _, cat := range Categories() {
		if len(c.InCategory(cat)) == 0 {
			t.Errorf("category %q has no products", cat)
		}
		if len(c.TypesInCategory(cat)) == 0 {
			t.Errorf("category %q has no product types", cat)
		}
	}
	if got := len(Categories()); got != 18 {
		t.Fatalf("got %d categories, paper has 18", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{ProductsPerType: 5, Seed: 42})
	b := Generate(Config{ProductsPerType: 5, Seed: 42})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Products() {
		if a.Products()[i] != b.Products()[i] {
			t.Fatalf("product %d differs: %+v vs %+v", i, a.Products()[i], b.Products()[i])
		}
	}
}

func TestProductsPerType(t *testing.T) {
	c := Generate(Config{ProductsPerType: 7, Seed: 1})
	for _, tn := range c.Types() {
		if got := len(c.OfType(tn)); got != 7 {
			t.Errorf("type %q has %d products, want 7", tn, got)
		}
	}
}

func TestByID(t *testing.T) {
	c := Generate(Config{ProductsPerType: 3, Seed: 1})
	p := c.Products()[0]
	got, ok := c.ByID(p.ID)
	if !ok || got.ID != p.ID {
		t.Fatalf("ByID(%q) = %+v, %v", p.ID, got, ok)
	}
	if _, ok := c.ByID("NOPE"); ok {
		t.Error("unknown ID should not resolve")
	}
}

func TestEveryTypeHasIntents(t *testing.T) {
	c := Generate(Config{ProductsPerType: 1, Seed: 1})
	for _, tn := range c.Types() {
		pt, ok := c.Type(tn)
		if !ok {
			t.Fatalf("type %q missing", tn)
		}
		if len(pt.Intents) == 0 {
			t.Errorf("type %q has no intents", tn)
		}
		for _, in := range pt.Intents {
			if !relations.Valid(in.Relation) {
				t.Errorf("type %q intent has invalid relation %q", tn, in.Relation)
			}
			if strings.TrimSpace(in.Tail) == "" {
				t.Errorf("type %q has empty intent tail", tn)
			}
		}
	}
}

func TestComplementsResolve(t *testing.T) {
	c := Generate(Config{ProductsPerType: 1, Seed: 1})
	for _, tn := range c.Types() {
		pt, _ := c.Type(tn)
		for _, comp := range pt.Complements {
			if _, ok := c.Type(comp); !ok {
				t.Errorf("type %q lists unknown complement %q", tn, comp)
			}
		}
	}
}

func TestComplementsShareIntent(t *testing.T) {
	// The world invariant: declared complements share at least one
	// ground-truth intent, so co-buys have a discoverable reason.
	c := Generate(Config{ProductsPerType: 2, Seed: 1})
	for _, tn := range c.Types() {
		pt, _ := c.Type(tn)
		for _, comp := range pt.Complements {
			a := c.OfType(tn)[0]
			b := c.OfType(comp)[0]
			shared := c.SharedIntents(a, b)
			hasComplementIntent := false
			// A USED_WITH intent pointing at the partner type also
			// counts as a reason.
			for _, in := range c.IntentsOf(a) {
				if in.Relation == relations.UsedWith && strings.Contains(in.Tail, comp) {
					hasComplementIntent = true
				}
			}
			for _, in := range c.IntentsOf(b) {
				if in.Relation == relations.UsedWith && strings.Contains(in.Tail, tn) {
					hasComplementIntent = true
				}
			}
			if len(shared) == 0 && !hasComplementIntent {
				t.Errorf("complements %q and %q share no intent", tn, comp)
			}
		}
	}
}

func TestAreComplements(t *testing.T) {
	c := Generate(Config{ProductsPerType: 1, Seed: 1})
	if !c.AreComplements("tent", "sleeping bag") {
		t.Error("tent and sleeping bag should be complements")
	}
	if !c.AreComplements("sleeping bag", "tent") {
		t.Error("complement check should be symmetric")
	}
	if c.AreComplements("tent", "fountain pen") {
		t.Error("tent and fountain pen should not be complements")
	}
}

func TestTitlesContainTypeAndBrand(t *testing.T) {
	c := Generate(Config{ProductsPerType: 3, Seed: 9})
	for _, p := range c.Products() {
		if !strings.Contains(p.Title, p.Type) {
			t.Errorf("title %q missing type %q", p.Title, p.Type)
		}
		if !strings.Contains(p.Title, p.Brand) {
			t.Errorf("title %q missing brand %q", p.Title, p.Brand)
		}
	}
}

func TestPopularityDecreasesWithinType(t *testing.T) {
	c := Generate(Config{ProductsPerType: 5, Seed: 1})
	for _, tn := range c.Types() {
		ps := c.OfType(tn)
		for i := 1; i < len(ps); i++ {
			if ps[i].Popularity > ps[i-1].Popularity {
				t.Fatalf("type %q popularity not decreasing", tn)
			}
		}
	}
}

func TestSharedIntentsSymmetric(t *testing.T) {
	c := Generate(Config{ProductsPerType: 1, Seed: 1})
	a := c.OfType("tent")[0]
	b := c.OfType("sleeping bag")[0]
	if len(c.SharedIntents(a, b)) != len(c.SharedIntents(b, a)) {
		t.Error("SharedIntents should be symmetric in count")
	}
	if len(c.SharedIntents(a, b)) == 0 {
		t.Error("tent and sleeping bag should share the camping intent")
	}
}

func TestIntentSurface(t *testing.T) {
	in := Intent{Relation: relations.CapableOf, Tail: "holding snacks"}
	if got := in.Surface(); got != "capable of holding snacks" {
		t.Errorf("Surface() = %q", got)
	}
}

func TestWorldScale(t *testing.T) {
	c := Generate(Config{ProductsPerType: 1, Seed: 1})
	if n := len(c.Types()); n < 100 {
		t.Errorf("world has only %d product types; want >= 100 for diversity", n)
	}
}
