// Package catalog implements the synthetic product-catalog substrate.
//
// The paper samples products from Amazon's catalog using category
// ("browse node") and product-type labels. This package generates a
// deterministic synthetic catalog over the paper's 18 major categories
// (Table 3), where every product type carries a latent intent profile:
// the ground-truth commonsense facts (relation, tail) that explain why
// customers buy products of that type. The behavior simulator uses these
// latent intents to produce realistic co-buy and search-buy logs, and the
// evaluation uses them as exact ground truth for typicality.
package catalog

import (
	"fmt"
	"math/rand"
	"sort"

	"cosmo/internal/relations"
)

// Category is one of the 18 major product domains from paper Table 3.
type Category string

// The 18 categories of paper Table 3, in table order.
const (
	Clothing    Category = "Clothing, Shoes & Jewelry"
	Sports      Category = "Sports & Outdoors"
	HomeKitchen Category = "Home & Kitchen"
	PatioGarden Category = "Patio, Lawn & Garden"
	Tools       Category = "Tools & Home Improvement"
	Musical     Category = "Musical Instruments"
	Industrial  Category = "Industrial & Scientific"
	Automotive  Category = "Automotive"
	Electronics Category = "Electronics"
	Baby        Category = "Baby Products"
	ArtsCrafts  Category = "Arts, Crafts & Sewing"
	Health      Category = "Health & Household"
	Toys        Category = "Toys & Games"
	VideoGames  Category = "Video Games"
	Grocery     Category = "Grocery & Gourmet Food"
	Office      Category = "Office Products"
	PetSupplies Category = "Pet Supplies"
	Others      Category = "Others"
)

// Categories returns the 18 categories in Table 3 order.
func Categories() []Category {
	return []Category{
		Clothing, Sports, HomeKitchen, PatioGarden, Tools, Musical,
		Industrial, Automotive, Electronics, Baby, ArtsCrafts, Health,
		Toys, VideoGames, Grocery, Office, PetSupplies, Others,
	}
}

// Intent is one ground-truth commonsense fact attached to a product type.
type Intent struct {
	Relation relations.Relation
	Tail     string
}

// Surface returns the verbalized knowledge string for the intent.
func (it Intent) Surface() string { return relations.Verbalize(it.Relation, it.Tail) }

// ProductType describes what a product essentially is ("umbrella",
// "chair"); the paper uses >1000 such labels for sampling. Each carries
// the latent intents that ground the simulation.
type ProductType struct {
	Name     string
	Category Category
	Intents  []Intent
	// Complements lists product-type names frequently co-purchased with
	// this type for a shared reason (intentional co-buys).
	Complements []string
}

// Product is one catalog item.
type Product struct {
	ID       string
	Title    string
	Category Category
	Type     string // ProductType name
	Brand    string
	// Popularity is the base attractiveness weight used by the behavior
	// simulator's Zipf-like sampling; higher means more interactions.
	Popularity float64
}

// Catalog is an immutable synthetic catalog.
type Catalog struct {
	products    []Product
	byID        map[string]int
	byType      map[string][]int
	byCategory  map[Category][]int
	types       map[string]ProductType
	typeOrder   []string
	catTypeName map[Category][]string
}

// Config controls catalog generation.
type Config struct {
	// ProductsPerType is how many distinct products to mint per product
	// type. The paper's scale is millions; tests use small values.
	ProductsPerType int
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config { return Config{ProductsPerType: 12, Seed: 1} }

// Generate builds a catalog from the built-in world data.
func Generate(cfg Config) *Catalog {
	if cfg.ProductsPerType <= 0 {
		cfg.ProductsPerType = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Catalog{
		byID:        map[string]int{},
		byType:      map[string][]int{},
		byCategory:  map[Category][]int{},
		types:       map[string]ProductType{},
		catTypeName: map[Category][]string{},
	}
	for _, pt := range worldData {
		c.types[pt.Name] = pt
		c.typeOrder = append(c.typeOrder, pt.Name)
		c.catTypeName[pt.Category] = append(c.catTypeName[pt.Category], pt.Name)
	}
	sort.Strings(c.typeOrder)
	id := 0
	for _, name := range c.typeOrder {
		pt := c.types[name]
		for i := 0; i < cfg.ProductsPerType; i++ {
			id++
			p := Product{
				ID:       fmt.Sprintf("P%06d", id),
				Category: pt.Category,
				Type:     pt.Name,
				Brand:    brands[rng.Intn(len(brands))],
				// Zipf-like popularity: rank within type.
				Popularity: 1.0 / float64(i+1),
			}
			p.Title = makeTitle(rng, p.Brand, pt.Name)
			idx := len(c.products)
			c.products = append(c.products, p)
			c.byID[p.ID] = idx
			c.byType[pt.Name] = append(c.byType[pt.Name], idx)
			c.byCategory[pt.Category] = append(c.byCategory[pt.Category], idx)
		}
	}
	return c
}

var titleAdjectives = []string{
	"Premium", "Portable", "Heavy Duty", "Adjustable", "Compact",
	"Waterproof", "Lightweight", "Professional", "Deluxe", "Classic",
	"Ergonomic", "Foldable", "Durable", "Multi-Purpose", "Eco-Friendly",
}

var titleSuffixes = []string{
	"with Carry Case", "2-Pack", "Large", "Small", "for Home and Travel",
	"Gift Set", "Upgraded Version", "with Accessories", "New Model", "",
}

var brands = []string{
	"Acme", "Zenith", "Northwind", "Bluepeak", "Solstice", "Orchard",
	"Ironclad", "Lumina", "Cascade", "Harbor", "Pinnacle", "Vertex",
	"Meridian", "Summit", "Aurora", "Redwood",
}

func makeTitle(rng *rand.Rand, brand, typeName string) string {
	adj := titleAdjectives[rng.Intn(len(titleAdjectives))]
	suf := titleSuffixes[rng.Intn(len(titleSuffixes))]
	t := fmt.Sprintf("%s %s %s", brand, adj, typeName)
	if suf != "" {
		t += " " + suf
	}
	return t
}

// Products returns all products (do not mutate).
func (c *Catalog) Products() []Product { return c.products }

// Len returns the number of products.
func (c *Catalog) Len() int { return len(c.products) }

// ByID returns the product with the given ID.
func (c *Catalog) ByID(id string) (Product, bool) {
	i, ok := c.byID[id]
	if !ok {
		return Product{}, false
	}
	return c.products[i], true
}

// OfType returns all products of the given product type.
func (c *Catalog) OfType(typeName string) []Product {
	idxs := c.byType[typeName]
	out := make([]Product, len(idxs))
	for i, idx := range idxs {
		out[i] = c.products[idx]
	}
	return out
}

// InCategory returns all products in the category.
func (c *Catalog) InCategory(cat Category) []Product {
	idxs := c.byCategory[cat]
	out := make([]Product, len(idxs))
	for i, idx := range idxs {
		out[i] = c.products[idx]
	}
	return out
}

// Type returns the ProductType record for a type name.
func (c *Catalog) Type(name string) (ProductType, bool) {
	pt, ok := c.types[name]
	return pt, ok
}

// Types returns all product-type names in sorted order.
func (c *Catalog) Types() []string { return c.typeOrder }

// TypesInCategory returns product-type names in the category.
func (c *Catalog) TypesInCategory(cat Category) []string {
	return c.catTypeName[cat]
}

// IntentsOf returns the ground-truth intents of a product (via its type).
func (c *Catalog) IntentsOf(p Product) []Intent {
	return c.types[p.Type].Intents
}

// SharedIntents returns intents common to both products' types, the
// ground truth for why they might be co-purchased intentionally.
func (c *Catalog) SharedIntents(a, b Product) []Intent {
	ta := c.types[a.Type]
	tb := c.types[b.Type]
	var shared []Intent
	for _, ia := range ta.Intents {
		for _, ib := range tb.Intents {
			if ia == ib {
				shared = append(shared, ia)
			}
		}
	}
	return shared
}

// AreComplements reports whether the two product types are declared
// complements in the world data (in either direction).
func (c *Catalog) AreComplements(typeA, typeB string) bool {
	for _, x := range c.types[typeA].Complements {
		if x == typeB {
			return true
		}
	}
	for _, x := range c.types[typeB].Complements {
		if x == typeA {
			return true
		}
	}
	return false
}
