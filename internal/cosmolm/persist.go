package cosmolm

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"cosmo/internal/catalog"
	"cosmo/internal/classifier"
	"cosmo/internal/instruction"
	"cosmo/internal/relations"
)

// modelSnapshot is the serializable form of a trained COSMO-LM, used by
// the deployment manager's model refresh (the SageMaker-update analog).
type modelSnapshot struct {
	Tails    []tailSnapshot
	Inverted map[string]map[int]int
	DocFreq  map[string]int
	NumDocs  int
	HeadDim  int
	Heads    map[instruction.Task]*classifier.LogReg
}

type tailSnapshot struct {
	Relation relations.Relation
	Tail     string
	Count    int
	Domains  map[catalog.Category]int
}

// WriteGob serializes the trained model.
func (m *Model) WriteGob(w io.Writer) error {
	snap := modelSnapshot{
		Inverted: m.inverted,
		DocFreq:  m.docFreq,
		NumDocs:  m.numDocs,
		HeadDim:  m.headDim,
		Heads:    m.heads,
	}
	for _, t := range m.tails {
		snap.Tails = append(snap.Tails, tailSnapshot{
			Relation: t.relation, Tail: t.tail, Count: t.count, Domains: t.domains,
		})
	}
	// Buffered like the kg exporters: gob emits many small writes, and
	// the flush error must not be dropped.
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(snap); err != nil {
		return fmt.Errorf("cosmolm: encode gob: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("cosmolm: flush gob: %w", err)
	}
	return nil
}

// ReadGob loads a model previously written with WriteGob.
func ReadGob(r io.Reader) (*Model, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("cosmolm: decode gob: %w", err)
	}
	m := &Model{
		inverted: snap.Inverted,
		docFreq:  snap.DocFreq,
		numDocs:  snap.NumDocs,
		headDim:  snap.HeadDim,
		heads:    snap.Heads,
	}
	if m.inverted == nil {
		m.inverted = map[string]map[int]int{}
	}
	if m.docFreq == nil {
		m.docFreq = map[string]int{}
	}
	if m.heads == nil {
		m.heads = map[instruction.Task]*classifier.LogReg{}
	}
	for _, t := range snap.Tails {
		m.tails = append(m.tails, tailEntry{
			relation: t.Relation, tail: t.Tail, count: t.Count, domains: t.Domains,
		})
	}
	return m, nil
}
