package cosmolm

import (
	"bytes"
	"strings"
	"testing"

	"cosmo/internal/instruction"
)

func TestGobRoundTrip(t *testing.T) {
	f := getFixture(t)
	var buf bytes.Buffer
	if err := f.model.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.KnownTails() != f.model.KnownTails() {
		t.Fatalf("tails %d vs %d", m2.KnownTails(), f.model.KnownTails())
	}
	if len(m2.Tasks()) != len(f.model.Tasks()) {
		t.Fatalf("tasks %v vs %v", m2.Tasks(), f.model.Tasks())
	}
	// Generations must be identical.
	p := f.cat.OfType("air mattress")[0]
	ctx := SearchContext("camping", p.Title)
	g1 := f.model.Generate(ctx, p.Category, "", 3)
	g2 := m2.Generate(ctx, p.Category, "", 3)
	if len(g1) != len(g2) {
		t.Fatalf("generation counts differ: %d vs %d", len(g1), len(g2))
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("generation %d differs: %+v vs %+v", i, g1[i], g2[i])
		}
	}
	// Predictions must be identical.
	_, p1 := f.model.Predict(instruction.TaskSearchRelevance, ctx)
	_, p2 := m2.Predict(instruction.TaskSearchRelevance, ctx)
	if p1 != p2 {
		t.Fatalf("prediction differs: %v vs %v", p1, p2)
	}
}

func TestReadGobGarbage(t *testing.T) {
	if _, err := ReadGob(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage should error")
	}
}

func TestGobRoundTripEmptyModel(t *testing.T) {
	empty := Train(nil, DefaultConfig())
	var buf bytes.Buffer
	if err := empty.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.KnownTails() != 0 {
		t.Errorf("empty model has %d tails", m.KnownTails())
	}
	if gens := m.Generate("anything", "", "", 3); len(gens) != 0 {
		t.Errorf("empty model generated %d", len(gens))
	}
}
