package cosmolm

import (
	"strings"
	"testing"

	"cosmo/internal/annotation"
	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
	"cosmo/internal/filter"
	"cosmo/internal/instruction"
	"cosmo/internal/know"
	"cosmo/internal/llm"
)

// fixture holds the trained model plus the world it was trained on.
type fixture struct {
	cat   *catalog.Catalog
	log   *behavior.Log
	teach *llm.Teacher
	model *Model
}

// buildFixture runs a miniature offline pipeline: generate → filter →
// annotate → instruction data → train COSMO-LM.
func buildFixture(tb testing.TB) *fixture {
	tb.Helper()
	cat := catalog.Generate(catalog.Config{ProductsPerType: 4, Seed: 1})
	log := behavior.Simulate(cat, behavior.Config{
		Seed: 2, CoBuyEvents: 8000, SearchEvents: 8000,
		NoiseRate: 0.25, BroadQueryRate: 0.4,
	})
	teach := llm.NewTeacher(cat, llm.DefaultConfig(llm.OPT30B))
	var cands []know.Candidate
	id := 0
	for _, e := range log.SearchBuys {
		p, _ := cat.ByID(e.ProductID)
		for _, g := range teach.GenerateSearchBuy(e.Query, p, 2) {
			id++
			cands = append(cands, know.Candidate{
				ID: id, Behavior: know.SearchBuy, Domain: p.Category,
				Query: e.Query, ProductA: e.ProductID, TypeA: p.Type,
				ContextText: e.Query + " " + p.Title,
				Text:        g.Text, Truth: g.Truth,
				PairIntentional: e.Intentional,
			})
		}
	}
	for _, e := range log.CoBuys[:len(log.CoBuys)/2] {
		pa, _ := cat.ByID(e.A)
		pb, _ := cat.ByID(e.B)
		for _, g := range teach.GenerateCoBuy(pa, pb, 2) {
			id++
			cands = append(cands, know.Candidate{
				ID: id, Behavior: know.CoBuy, Domain: pa.Category,
				ProductA: e.A, ProductB: e.B, TypeA: pa.Type, TypeB: pb.Type,
				ContextText: pa.Title + " and " + pb.Title,
				Text:        g.Text, Truth: g.Truth,
				PairIntentional: e.Intentional,
			})
		}
	}
	kept, _, _ := filter.New(filter.DefaultConfig()).Run(cands)
	oracle := annotation.NewOracle(annotation.DefaultConfig())
	anns := oracle.AnnotateAll(kept)
	data := instruction.NewBuilder(instruction.DefaultConfig()).Build(kept, anns)
	model := Train(data, DefaultConfig())
	return &fixture{cat: cat, log: log, teach: teach, model: model}
}

var shared *fixture

func getFixture(tb testing.TB) *fixture {
	if shared == nil {
		shared = buildFixture(tb)
	}
	return shared
}

func TestTrainLearnsTails(t *testing.T) {
	f := getFixture(t)
	if n := f.model.KnownTails(); n < 50 {
		t.Errorf("only %d tails learned", n)
	}
	if len(f.model.Tasks()) != 4 {
		t.Errorf("prediction tasks = %v, want 4", f.model.Tasks())
	}
}

// truthMatch reports whether a generated tail matches one of the
// product's ground-truth intents.
func truthMatch(cat *catalog.Catalog, p catalog.Product, text string) bool {
	for _, in := range cat.IntentsOf(p) {
		if in.Surface() == text {
			return true
		}
	}
	return false
}

func TestGenerationMoreTypicalThanTeacher(t *testing.T) {
	// The paper's central alignment claim: the instruction-tuned model
	// generates typical knowledge at a far higher rate than the raw
	// teacher LLM.
	f := getFixture(t)
	teacherHits, teacherTotal := 0, 0
	modelHits, modelTotal := 0, 0
	evalTeach := llm.NewTeacher(f.cat, llm.DefaultConfig(llm.OPT30B))
	n := 0
	for _, e := range f.log.SearchBuys {
		if !e.Intentional || !e.Broad {
			continue
		}
		n++
		if n > 300 {
			break
		}
		p, _ := f.cat.ByID(e.ProductID)
		for _, g := range evalTeach.GenerateSearchBuy(e.Query, p, 1) {
			teacherTotal++
			if truthMatch(f.cat, p, g.Text) {
				teacherHits++
			}
		}
		for _, g := range f.model.Generate(SearchContext(e.Query, p.Title), p.Category, "", 1) {
			modelTotal++
			if truthMatch(f.cat, p, g.Text) {
				modelHits++
			}
		}
	}
	if teacherTotal == 0 || modelTotal == 0 {
		t.Fatal("no generations to compare")
	}
	teacherRate := float64(teacherHits) / float64(teacherTotal)
	modelRate := float64(modelHits) / float64(modelTotal)
	t.Logf("typicality: teacher=%.3f cosmo-lm=%.3f", teacherRate, modelRate)
	if modelRate <= teacherRate {
		t.Errorf("COSMO-LM typicality %.3f should beat teacher %.3f", modelRate, teacherRate)
	}
	if modelRate < 0.5 {
		t.Errorf("COSMO-LM typicality %.3f too low for serving", modelRate)
	}
}

func TestGenerationCheaperThanTeacher(t *testing.T) {
	f := getFixture(t)
	f.model.ResetCost()
	evalTeach := llm.NewTeacher(f.cat, llm.DefaultConfig(llm.OPT30B))
	p := f.cat.OfType("air mattress")[0]
	for i := 0; i < 100; i++ {
		evalTeach.GenerateSearchBuy("camping", p, 1)
		f.model.Generate(SearchContext("camping", p.Title), p.Category, "", 1)
	}
	tc := evalTeach.Cost()
	mc := f.model.Cost()
	if mc.SimulatedMs*2 >= tc.SimulatedMs {
		t.Errorf("COSMO-LM cost %.0fms not well below teacher %.0fms", mc.SimulatedMs, tc.SimulatedMs)
	}
}

func TestGenerateRespectsRelationFilter(t *testing.T) {
	f := getFixture(t)
	p := f.cat.OfType("air mattress")[0]
	for _, g := range f.model.Generate(SearchContext("camping", p.Title), p.Category, "CAPABLE_OF", 5) {
		if string(g.Relation) != "CAPABLE_OF" {
			t.Errorf("relation filter violated: %s", g.Relation)
		}
	}
}

func TestGenerateRanked(t *testing.T) {
	f := getFixture(t)
	p := f.cat.OfType("dog leash")[0]
	gens := f.model.Generate(SearchContext("dog", p.Title), p.Category, "", 10)
	for i := 1; i < len(gens); i++ {
		if gens[i].Score > gens[i-1].Score {
			t.Fatal("generations not ranked by score")
		}
	}
	for _, g := range gens {
		if !strings.Contains(g.Text, g.Tail) {
			t.Errorf("text %q missing tail %q", g.Text, g.Tail)
		}
	}
}

func TestGenerateUnknownContext(t *testing.T) {
	f := getFixture(t)
	gens := f.model.Generate("xyzzy frobnicate", "", "", 3)
	// Unknown tokens produce no retrieval hits; empty output is correct.
	if len(gens) != 0 {
		t.Errorf("unknown context produced %d generations", len(gens))
	}
}

func TestPredictHeadsSeparateRelevance(t *testing.T) {
	// The search-relevance head must separate intentional search-buy
	// pairs from noise pairs across the behavior distribution.
	f := getFixture(t)
	correct, total := 0, 0
	for i, e := range f.log.SearchBuys {
		if i%7 != 0 { // subsample for speed
			continue
		}
		p, _ := f.cat.ByID(e.ProductID)
		yes, _ := f.model.Predict(instruction.TaskSearchRelevance, SearchContext(e.Query, p.Title))
		if yes == e.Intentional {
			correct++
		}
		total++
	}
	if total == 0 {
		t.Fatal("no pairs evaluated")
	}
	if acc := float64(correct) / float64(total); acc < 0.70 {
		t.Errorf("relevance head accuracy %.3f too low over %d pairs", acc, total)
	}
}

func TestPredictUnknownTask(t *testing.T) {
	f := getFixture(t)
	yes, p := f.model.Predict(instruction.Task("nope"), "anything")
	if yes || p != 0.5 {
		t.Errorf("unknown task should be neutral, got %v %v", yes, p)
	}
}

func TestContextHelpers(t *testing.T) {
	if got := SearchContext("camping", "Acme Tent"); got != "search query: camping | purchased: Acme Tent" {
		t.Errorf("SearchContext = %q", got)
	}
	if got := CoBuyContext("A", "B"); got != "co-purchased products: A and B" {
		t.Errorf("CoBuyContext = %q", got)
	}
}

func BenchmarkCosmoLMGenerate(b *testing.B) {
	f := getFixture(b)
	p := f.cat.OfType("air mattress")[0]
	ctx := SearchContext("camping", p.Title)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.model.Generate(ctx, p.Category, "", 3)
	}
}
