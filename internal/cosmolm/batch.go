package cosmolm

import (
	"runtime"
	"sync"

	"cosmo/internal/catalog"
	"cosmo/internal/relations"
)

// BatchRequest is one generation request in a batch.
type BatchRequest struct {
	Context  string
	Domain   catalog.Category
	Relation relations.Relation
	K        int
}

// GenerateBatch runs many generation requests concurrently — the shape
// of the serving deployment's batch processor, where daily cache misses
// are processed together rather than inline. Results align with the
// request slice. The model is read-only during generation, so requests
// fan out across GOMAXPROCS workers.
func (m *Model) GenerateBatch(reqs []BatchRequest) [][]Generated {
	out := make([][]Generated, len(reqs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r := reqs[i]
				out[i] = m.Generate(r.Context, r.Domain, r.Relation, r.K)
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
