package cosmolm

import (
	"cosmo/internal/catalog"
	"cosmo/internal/parallel"
	"cosmo/internal/relations"
)

// BatchRequest is one generation request in a batch.
type BatchRequest struct {
	Context  string
	Domain   catalog.Category
	Relation relations.Relation
	K        int
}

// GenerateBatch runs many generation requests concurrently — the shape
// of the serving deployment's batch processor, where daily cache misses
// are processed together rather than inline. Results align with the
// request slice (out[i] answers reqs[i] for every worker count). The
// model is read-only during generation, so requests fan out across
// GOMAXPROCS workers on the shared pipeline pool.
func (m *Model) GenerateBatch(reqs []BatchRequest) [][]Generated {
	return m.GenerateBatchWorkers(reqs, 0)
}

// GenerateBatchWorkers is GenerateBatch with an explicit worker bound
// (<= 0 means GOMAXPROCS).
func (m *Model) GenerateBatchWorkers(reqs []BatchRequest, workers int) [][]Generated {
	return parallel.Map(workers, reqs, func(i int, r BatchRequest) []Generated {
		return m.Generate(r.Context, r.Domain, r.Relation, r.K)
	})
}
