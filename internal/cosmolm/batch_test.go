package cosmolm

import (
	"testing"
)

func TestGenerateBatchMatchesSequential(t *testing.T) {
	f := getFixture(t)
	var reqs []BatchRequest
	for _, tn := range []string{"air mattress", "dog leash", "smart watch", "tent", "fountain pen"} {
		p := f.cat.OfType(tn)[0]
		reqs = append(reqs, BatchRequest{
			Context: SearchContext(tn, p.Title), Domain: p.Category, K: 3,
		})
	}
	batch := f.model.GenerateBatch(reqs)
	if len(batch) != len(reqs) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, r := range reqs {
		seq := f.model.Generate(r.Context, r.Domain, r.Relation, r.K)
		if len(seq) != len(batch[i]) {
			t.Fatalf("request %d: %d vs %d generations", i, len(batch[i]), len(seq))
		}
		for j := range seq {
			if seq[j] != batch[i][j] {
				t.Fatalf("request %d generation %d differs", i, j)
			}
		}
	}
}

// TestGenerateBatchWorkersEquivalence: out[i] must answer reqs[i] regardless of
// the worker count — heterogeneous requests at every index, compared
// across worker counts and against sequential generation.
func TestGenerateBatchWorkersEquivalence(t *testing.T) {
	f := getFixture(t)
	types := []string{"air mattress", "dog leash", "smart watch", "tent", "fountain pen"}
	var reqs []BatchRequest
	for i := 0; i < 40; i++ {
		tn := types[i%len(types)]
		p := f.cat.OfType(tn)[0]
		reqs = append(reqs, BatchRequest{
			Context: SearchContext(tn, p.Title), Domain: p.Category, K: 1 + i%3,
		})
	}
	want := make([][]Generated, len(reqs))
	for i, r := range reqs {
		want[i] = f.model.Generate(r.Context, r.Domain, r.Relation, r.K)
	}
	for _, workers := range []int{1, 2, 7, 40} {
		got := f.model.GenerateBatchWorkers(reqs, workers)
		if len(got) != len(reqs) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(got), len(reqs))
		}
		for i := range reqs {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d request %d: %d vs %d generations",
					workers, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: result index %d not stable", workers, i)
				}
			}
		}
	}
}

func TestGenerateBatchEmpty(t *testing.T) {
	f := getFixture(t)
	if out := f.model.GenerateBatch(nil); len(out) != 0 {
		t.Errorf("empty batch produced %d results", len(out))
	}
}

func TestGenerateBatchConcurrentSafety(t *testing.T) {
	f := getFixture(t)
	p := f.cat.OfType("tent")[0]
	reqs := make([]BatchRequest, 200)
	for i := range reqs {
		reqs[i] = BatchRequest{Context: SearchContext("camping", p.Title), Domain: p.Category, K: 2}
	}
	out := f.model.GenerateBatch(reqs)
	for i := 1; i < len(out); i++ {
		if len(out[i]) != len(out[0]) {
			t.Fatal("identical requests produced different result counts")
		}
	}
}

func BenchmarkGenerateBatch(b *testing.B) {
	f := getFixture(b)
	p := f.cat.OfType("air mattress")[0]
	reqs := make([]BatchRequest, 64)
	for i := range reqs {
		reqs[i] = BatchRequest{Context: SearchContext("camping", p.Title), Domain: p.Category, K: 3}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.model.GenerateBatch(reqs)
	}
}
