// Package cosmolm implements COSMO-LM, the instruction-tuned efficient
// language model of §3.4. The paper fine-tunes LLaMA-7b/13b on ~30k
// instruction examples; this reproduction learns the same conditional
// behavior from the same instruction data with a retrieval-smoothed
// conditional generator plus logistic prediction heads:
//
//   - Generation: P(knowledge tail | behavior context) is estimated from
//     the typical-only generation examples via an inverted token index
//     with IDF weighting and domain/relation backoff. Because the
//     training outputs are exclusively high-typicality knowledge, the
//     model generates typical knowledge by construction — the alignment
//     property instruction tuning buys.
//   - Prediction: the four yes/no tasks (plausibility, typicality,
//     co-purchase, search relevance) are logistic heads over hashed
//     input tokens.
//
// Every call charges the shared cost meter at the 7b-class rate, which
// is what makes the paper's serving-efficiency claim measurable against
// the OPT teacher.
package cosmolm

import (
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"cosmo/internal/catalog"
	"cosmo/internal/classifier"
	"cosmo/internal/instruction"
	"cosmo/internal/llm"
	"cosmo/internal/relations"
	"cosmo/internal/textproc"
)

// Generated is one knowledge generation from COSMO-LM.
type Generated struct {
	Relation relations.Relation
	Tail     string
	Text     string
	Score    float64
}

// Config controls training.
type Config struct {
	// HeadDim is the hash dimension of the prediction heads.
	HeadDim int
	// Train is the logistic-regression training configuration.
	Train classifier.TrainConfig
}

// DefaultConfig returns sane defaults.
func DefaultConfig() Config {
	return Config{HeadDim: 1 << 14, Train: classifier.DefaultTrainConfig()}
}

// tailEntry is one learned knowledge tail.
type tailEntry struct {
	relation relations.Relation
	tail     string
	count    int
	domains  map[catalog.Category]int
}

// Model is the trained COSMO-LM.
type Model struct {
	tails []tailEntry
	// inverted maps content token -> tailID -> count.
	inverted map[string]map[int]int
	docFreq  map[string]int
	numDocs  int

	headDim int
	heads   map[instruction.Task]*classifier.LogReg

	cost llm.CostMeter
}

// Train fits COSMO-LM on instruction data.
func Train(data []instruction.Instance, cfg Config) *Model {
	if cfg.HeadDim <= 0 {
		cfg = DefaultConfig()
	}
	m := &Model{
		inverted: map[string]map[int]int{},
		docFreq:  map[string]int{},
		headDim:  cfg.HeadDim,
		heads:    map[instruction.Task]*classifier.LogReg{},
	}
	tailID := map[string]int{}
	headX := map[instruction.Task][][]int{}
	headY := map[instruction.Task][]bool{}
	for _, in := range data {
		switch in.Task {
		case instruction.TaskGenerate:
			rel, tail, ok := relations.ParseGeneration(in.Output)
			if !ok {
				continue
			}
			key := string(rel) + "|" + tail
			id, seen := tailID[key]
			if !seen {
				id = len(m.tails)
				tailID[key] = id
				m.tails = append(m.tails, tailEntry{
					relation: rel, tail: tail, domains: map[catalog.Category]int{},
				})
			}
			m.tails[id].count++
			m.tails[id].domains[in.Domain]++
			m.numDocs++
			seenTok := map[string]bool{}
			for _, tok := range contextTokens(in.Input) {
				mm := m.inverted[tok]
				if mm == nil {
					mm = map[int]int{}
					m.inverted[tok] = mm
				}
				mm[id]++
				if !seenTok[tok] {
					m.docFreq[tok]++
					seenTok[tok] = true
				}
			}
		default:
			headX[in.Task] = append(headX[in.Task], m.features(string(in.Task), in.Input))
			headY[in.Task] = append(headY[in.Task], in.Output == "yes")
		}
	}
	for task, X := range headX {
		m.heads[task] = classifier.TrainLogReg(m.headDim, X, headY[task], cfg.Train)
	}
	return m
}

// contextTokens extracts stemmed content tokens from a verbalized input.
func contextTokens(input string) []string {
	// Drop the template prefix markers; keep the payload words.
	input = strings.NewReplacer("|", " ", ":", " ").Replace(input)
	return textproc.StemAll(textproc.ContentTokens(input))
}

func (m *Model) features(task, input string) []int {
	var idx []int
	h := func(s string) int {
		hh := fnv.New32a()
		hh.Write([]byte(s)) //cosmo:lint-ignore dropped-error hash.Hash Write never returns an error (hash package contract)
		//cosmo:lint-ignore unchecked-narrowing headDim is validated positive in Train and config dims stay far below 2^32
		return int(hh.Sum32() % uint32(m.headDim))
	}
	toks := contextTokens(input)
	for i, t := range toks {
		idx = append(idx, h("w:"+t))
		if i+1 < len(toks) {
			idx = append(idx, h("b:"+t+"_"+toks[i+1]))
		}
	}
	// Cross features between the two context segments (query vs. product,
	// or product vs. product) so the relevance heads can model the
	// interaction rather than each side's marginal frequency.
	if parts := strings.SplitN(input, "|", 2); len(parts) == 2 {
		left := capTokens(contextTokens(parts[0]), 4)
		right := capTokens(contextTokens(parts[1]), 6)
		for _, a := range left {
			for _, b := range right {
				idx = append(idx, h("x:"+a+"|"+b))
			}
		}
	}
	idx = append(idx, h("task:"+task))
	return idx
}

func capTokens(toks []string, n int) []string {
	if len(toks) > n {
		return toks[:n]
	}
	return toks
}

// Generate produces the top-k knowledge generations for a behavior
// context. The context is the same verbalization the instruction data
// uses, e.g. "search query: camping | purchased: Acme Air Mattress" or
// "co-purchased products: <titleA> and <titleB>". If rel is non-empty
// only that relation's tails are considered. Domain "" disables the
// domain prior.
func (m *Model) Generate(context string, domain catalog.Category, rel relations.Relation, k int) []Generated {
	toks := contextTokens(context)
	m.cost.ChargeCustom(llm.CostPerTokenCosmoLM, len(toks)+8)
	scores := map[int]float64{}
	for _, tok := range toks {
		posting := m.inverted[tok]
		if len(posting) == 0 {
			continue
		}
		idf := math.Log(1 + float64(m.numDocs)/float64(1+m.docFreq[tok]))
		for id, cnt := range posting {
			scores[id] += idf * math.Log(1+float64(cnt))
		}
	}
	type cand struct {
		id int
		s  float64
	}
	var cands []cand
	for id, s := range scores {
		te := m.tails[id]
		if rel != "" && te.relation != rel {
			continue
		}
		// Domain prior: tails seen in this domain get a boost.
		if domain != "" {
			s += 0.5 * math.Log(1+float64(te.domains[domain]))
		}
		cands = append(cands, cand{id, s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return m.tails[cands[i].id].tail < m.tails[cands[j].id].tail
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Generated, 0, k)
	for i := 0; i < k; i++ {
		// Prune low-confidence continuations: tails whose score rides on
		// incidental token overlap (brands, adjectives) land far below
		// the best match and are dropped, like beam pruning in decoding.
		if i > 0 && cands[i].s < minScoreRatio*cands[0].s {
			break
		}
		te := m.tails[cands[i].id]
		out = append(out, Generated{
			Relation: te.relation,
			Tail:     te.tail,
			Text:     relations.Verbalize(te.relation, te.tail),
			Score:    cands[i].s,
		})
	}
	return out
}

// minScoreRatio is the beam-pruning threshold relative to the top score.
const minScoreRatio = 0.45

// Predict answers one of the four yes/no tasks for an input context.
// It returns the boolean decision and the probability of "yes".
func (m *Model) Predict(task instruction.Task, input string) (bool, float64) {
	m.cost.ChargeCustom(llm.CostPerTokenCosmoLM, len(contextTokens(input))+4)
	head, ok := m.heads[task]
	if !ok {
		return false, 0.5
	}
	p := head.Prob(m.features(string(task), input))
	return p >= 0.5, p
}

// KnownTails returns the number of distinct knowledge tails learned.
func (m *Model) KnownTails() int { return len(m.tails) }

// Tasks returns the prediction tasks the model was trained for.
func (m *Model) Tasks() []instruction.Task {
	out := make([]instruction.Task, 0, len(m.heads))
	for t := range m.heads {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Cost returns accumulated simulated inference cost.
func (m *Model) Cost() llm.CostSnapshot { return m.cost.Snapshot() }

// ResetCost zeroes the cost meter (used between benchmark phases).
func (m *Model) ResetCost() { m.cost.Reset() }

// SearchContext builds the canonical search-buy context string.
func SearchContext(query, productTitle string) string {
	return "search query: " + query + " | purchased: " + productTitle
}

// CoBuyContext builds the canonical co-buy context string.
func CoBuyContext(titleA, titleB string) string {
	return "co-purchased products: " + titleA + " and " + titleB
}
