package nn

import "math/rand"

// Linear is a dense layer y = Wx + b.
type Linear struct {
	W *Param
	B *Param
}

// NewLinear builds a dense layer and registers its parameters.
func NewLinear(set *Set, name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		W: NewParam(name+".W", out, in).Init(rng),
		B: NewParam(name+".b", out, 1),
	}
	set.Add(l.W, l.B)
	return l
}

// Forward applies the layer.
func (l *Linear) Forward(t *Tape, x *Vec) *Vec {
	return t.Add(t.MatVec(l.W, x), t.Use(l.B))
}

// MLP is a two-layer perceptron with ReLU.
type MLP struct {
	L1, L2 *Linear
}

// NewMLP builds a 2-layer MLP.
func NewMLP(set *Set, name string, in, hidden, out int, rng *rand.Rand) *MLP {
	return &MLP{
		L1: NewLinear(set, name+".1", in, hidden, rng),
		L2: NewLinear(set, name+".2", hidden, out, rng),
	}
}

// Forward applies the MLP.
func (m *MLP) Forward(t *Tape, x *Vec) *Vec {
	return m.L2.Forward(t, t.ReLU(m.L1.Forward(t, x)))
}

// GRUCell is a gated recurrent unit.
type GRUCell struct {
	Wr, Ur, Wz, Uz, Wh, Uh *Param
	Br, Bz, Bh             *Param
	Hidden                 int
}

// NewGRUCell builds a GRU cell and registers its parameters.
func NewGRUCell(set *Set, name string, input, hidden int, rng *rand.Rand) *GRUCell {
	c := &GRUCell{
		Wr:     NewParam(name+".Wr", hidden, input).Init(rng),
		Ur:     NewParam(name+".Ur", hidden, hidden).Init(rng),
		Wz:     NewParam(name+".Wz", hidden, input).Init(rng),
		Uz:     NewParam(name+".Uz", hidden, hidden).Init(rng),
		Wh:     NewParam(name+".Wh", hidden, input).Init(rng),
		Uh:     NewParam(name+".Uh", hidden, hidden).Init(rng),
		Br:     NewParam(name+".br", hidden, 1),
		Bz:     NewParam(name+".bz", hidden, 1),
		Bh:     NewParam(name+".bh", hidden, 1),
		Hidden: hidden,
	}
	set.Add(c.Wr, c.Ur, c.Wz, c.Uz, c.Wh, c.Uh, c.Br, c.Bz, c.Bh)
	return c
}

// Step computes the next hidden state from input x and previous h.
func (c *GRUCell) Step(t *Tape, x, h *Vec) *Vec {
	r := t.Sigmoid(t.Add(t.Add(t.MatVec(c.Wr, x), t.MatVec(c.Ur, h)), t.Use(c.Br)))
	z := t.Sigmoid(t.Add(t.Add(t.MatVec(c.Wz, x), t.MatVec(c.Uz, h)), t.Use(c.Bz)))
	hTilde := t.Tanh(t.Add(t.Add(t.MatVec(c.Wh, x), t.MatVec(c.Uh, t.Mul(r, h))), t.Use(c.Bh)))
	// h' = (1-z)⊙h + z⊙h~  = h + z⊙(h~ - h)
	return t.Add(h, t.Mul(z, t.Sub(hTilde, h)))
}

// Zero returns a zero hidden state on the tape.
func (c *GRUCell) Zero(t *Tape) *Vec {
	return t.Const(make([]float64, c.Hidden))
}

// Attention is additive attention: score_i = v·tanh(Wq q + Wk k_i + b).
type Attention struct {
	Wq, Wk, B, V *Param
}

// NewAttention builds an additive attention module.
func NewAttention(set *Set, name string, dim, hidden int, rng *rand.Rand) *Attention {
	a := &Attention{
		Wq: NewParam(name+".Wq", hidden, dim).Init(rng),
		Wk: NewParam(name+".Wk", hidden, dim).Init(rng),
		B:  NewParam(name+".b", hidden, 1),
		V:  NewParam(name+".v", 1, hidden).Init(rng),
	}
	set.Add(a.Wq, a.Wk, a.B, a.V)
	return a
}

// Pool attends query q over keys and returns the weighted sum of keys.
func (a *Attention) Pool(t *Tape, q *Vec, keys []*Vec) *Vec {
	qProj := t.MatVec(a.Wq, q)
	scores := make([]*Vec, len(keys))
	for i, k := range keys {
		h := t.Tanh(t.Add(t.Add(qProj, t.MatVec(a.Wk, k)), t.Use(a.B)))
		scores[i] = t.MatVec(a.V, h)
	}
	logits := t.Concat(scores...)
	weights := t.Softmax(logits)
	return t.WeightedSum(weights, keys)
}

// GraphConv is one propagation layer over a session graph: each node
// aggregates mean(in-neighbors) and mean(out-neighbors), then mixes with
// its own state through a linear layer (an SR-GNN-style gated
// propagation simplified to a single gate).
type GraphConv struct {
	Win, Wout, Wself *Param
	B                *Param
}

// NewGraphConv builds a propagation layer for node dimension dim.
func NewGraphConv(set *Set, name string, dim int, rng *rand.Rand) *GraphConv {
	g := &GraphConv{
		Win:   NewParam(name+".Win", dim, dim).Init(rng),
		Wout:  NewParam(name+".Wout", dim, dim).Init(rng),
		Wself: NewParam(name+".Wself", dim, dim).Init(rng),
		B:     NewParam(name+".b", dim, 1),
	}
	set.Add(g.Win, g.Wout, g.Wself, g.B)
	return g
}

// Propagate updates node states given in/out adjacency lists
// (inAdj[i] lists node indices with an edge into i).
func (g *GraphConv) Propagate(t *Tape, states []*Vec, inAdj, outAdj [][]int) []*Vec {
	out := make([]*Vec, len(states))
	for i := range states {
		agg := t.MatVec(g.Wself, states[i])
		if len(inAdj[i]) > 0 {
			ns := make([]*Vec, len(inAdj[i]))
			for j, n := range inAdj[i] {
				ns[j] = states[n]
			}
			agg = t.Add(agg, t.MatVec(g.Win, t.Mean(ns)))
		}
		if len(outAdj[i]) > 0 {
			ns := make([]*Vec, len(outAdj[i]))
			for j, n := range outAdj[i] {
				ns[j] = states[n]
			}
			agg = t.Add(agg, t.MatVec(g.Wout, t.Mean(ns)))
		}
		// Residual connection: the gated-update GNNs this layer stands in
		// for preserve node identity across propagation steps.
		out[i] = t.Add(states[i], t.Tanh(t.Add(agg, t.Use(g.B))))
	}
	return out
}
