// Package nn is a minimal neural-network library (reverse-mode autograd
// over vectors) powering the reproduction's downstream models: the
// bi-/cross-encoders of the search-relevance experiment and the
// sequential / attention / graph models of the session-based
// recommendation experiment. Stdlib only, deterministic given a seed.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is a trainable tensor, stored flat row-major.
type Param struct {
	Name string
	Rows int
	Cols int
	V    []float64
	G    []float64
}

// NewParam allocates a zero parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name, Rows: rows, Cols: cols,
		V: make([]float64, rows*cols),
		G: make([]float64, rows*cols),
	}
}

// Init fills the parameter with Glorot-uniform noise.
func (p *Param) Init(rng *rand.Rand) *Param {
	limit := math.Sqrt(6.0 / float64(p.Rows+p.Cols))
	for i := range p.V {
		p.V[i] = (rng.Float64()*2 - 1) * limit
	}
	return p
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Row returns row r of the parameter (a view, not a copy).
func (p *Param) Row(r int) []float64 { return p.V[r*p.Cols : (r+1)*p.Cols] }

// RowGrad returns the gradient slice of row r.
func (p *Param) RowGrad(r int) []float64 { return p.G[r*p.Cols : (r+1)*p.Cols] }

// Set collects parameters for an optimizer.
type Set struct {
	params []*Param
}

// Add registers parameters and returns the last one (for chaining).
func (s *Set) Add(ps ...*Param) *Param {
	s.params = append(s.params, ps...)
	return ps[len(ps)-1]
}

// All returns the registered parameters.
func (s *Set) All() []*Param { return s.params }

// ZeroGrad clears every gradient.
func (s *Set) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// NumParams returns the total scalar parameter count.
func (s *Set) NumParams() int {
	n := 0
	for _, p := range s.params {
		n += len(p.V)
	}
	return n
}

// Tape records the computation for reverse-mode differentiation.
type Tape struct {
	backward []func()
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Vec is a node in the computation graph.
type Vec struct {
	V []float64
	G []float64
	t *Tape
}

// Len returns the vector length.
func (v *Vec) Len() int { return len(v.V) }

func (t *Tape) node(n int) *Vec {
	return &Vec{V: make([]float64, n), G: make([]float64, n), t: t}
}

// Const wraps a constant (no gradient flows into vals).
func (t *Tape) Const(vals []float64) *Vec {
	v := t.node(len(vals))
	copy(v.V, vals)
	return v
}

// Use wraps a parameter vector node: gradients flow into p.G. The
// parameter must have Cols == 1 or represent a flat vector.
func (t *Tape) Use(p *Param) *Vec {
	v := t.node(len(p.V))
	copy(v.V, p.V)
	t.backward = append(t.backward, func() {
		for i := range v.G {
			p.G[i] += v.G[i]
		}
	})
	return v
}

// UseRow wraps one row of an embedding-table parameter.
func (t *Tape) UseRow(p *Param, r int) *Vec {
	v := t.node(p.Cols)
	copy(v.V, p.Row(r))
	g := p.RowGrad(r)
	t.backward = append(t.backward, func() {
		for i := range v.G {
			g[i] += v.G[i]
		}
	})
	return v
}

// MatVec computes W*x where W is (Rows x Cols) and x has length Cols.
func (t *Tape) MatVec(w *Param, x *Vec) *Vec {
	if w.Cols != x.Len() {
		panic(fmt.Sprintf("nn: MatVec %s dims %dx%d vs input %d", w.Name, w.Rows, w.Cols, x.Len()))
	}
	out := t.node(w.Rows)
	for r := 0; r < w.Rows; r++ {
		row := w.Row(r)
		s := 0.0
		for c, xv := range x.V {
			s += row[c] * xv
		}
		out.V[r] = s
	}
	t.backward = append(t.backward, func() {
		for r := 0; r < w.Rows; r++ {
			og := out.G[r]
			if og == 0 {
				continue
			}
			row := w.Row(r)
			grow := w.RowGrad(r)
			for c := 0; c < w.Cols; c++ {
				grow[c] += og * x.V[c]
				x.G[c] += og * row[c]
			}
		}
	})
	return out
}

// Add returns a+b (element-wise).
func (t *Tape) Add(a, b *Vec) *Vec {
	out := t.node(a.Len())
	for i := range out.V {
		out.V[i] = a.V[i] + b.V[i]
	}
	t.backward = append(t.backward, func() {
		for i := range out.G {
			a.G[i] += out.G[i]
			b.G[i] += out.G[i]
		}
	})
	return out
}

// Sub returns a-b.
func (t *Tape) Sub(a, b *Vec) *Vec {
	out := t.node(a.Len())
	for i := range out.V {
		out.V[i] = a.V[i] - b.V[i]
	}
	t.backward = append(t.backward, func() {
		for i := range out.G {
			a.G[i] += out.G[i]
			b.G[i] -= out.G[i]
		}
	})
	return out
}

// Mul returns a⊙b (element-wise product).
func (t *Tape) Mul(a, b *Vec) *Vec {
	out := t.node(a.Len())
	for i := range out.V {
		out.V[i] = a.V[i] * b.V[i]
	}
	t.backward = append(t.backward, func() {
		for i := range out.G {
			a.G[i] += out.G[i] * b.V[i]
			b.G[i] += out.G[i] * a.V[i]
		}
	})
	return out
}

// Scale returns s*a for a constant scalar s.
func (t *Tape) Scale(a *Vec, s float64) *Vec {
	out := t.node(a.Len())
	for i := range out.V {
		out.V[i] = a.V[i] * s
	}
	t.backward = append(t.backward, func() {
		for i := range out.G {
			a.G[i] += out.G[i] * s
		}
	})
	return out
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Vec) *Vec {
	out := t.node(a.Len())
	for i, v := range a.V {
		out.V[i] = 1 / (1 + math.Exp(-v))
	}
	t.backward = append(t.backward, func() {
		for i := range out.G {
			a.G[i] += out.G[i] * out.V[i] * (1 - out.V[i])
		}
	})
	return out
}

// Tanh applies tanh element-wise.
func (t *Tape) Tanh(a *Vec) *Vec {
	out := t.node(a.Len())
	for i, v := range a.V {
		out.V[i] = math.Tanh(v)
	}
	t.backward = append(t.backward, func() {
		for i := range out.G {
			a.G[i] += out.G[i] * (1 - out.V[i]*out.V[i])
		}
	})
	return out
}

// ReLU applies max(0,x) element-wise.
func (t *Tape) ReLU(a *Vec) *Vec {
	out := t.node(a.Len())
	for i, v := range a.V {
		if v > 0 {
			out.V[i] = v
		}
	}
	t.backward = append(t.backward, func() {
		for i := range out.G {
			if a.V[i] > 0 {
				a.G[i] += out.G[i]
			}
		}
	})
	return out
}

// Concat concatenates the inputs.
func (t *Tape) Concat(vs ...*Vec) *Vec {
	n := 0
	for _, v := range vs {
		n += v.Len()
	}
	out := t.node(n)
	off := 0
	for _, v := range vs {
		copy(out.V[off:], v.V)
		off += v.Len()
	}
	t.backward = append(t.backward, func() {
		off := 0
		for _, v := range vs {
			for i := range v.G {
				v.G[i] += out.G[off+i]
			}
			off += v.Len()
		}
	})
	return out
}

// Dot returns the scalar dot product as a length-1 vector.
func (t *Tape) Dot(a, b *Vec) *Vec {
	out := t.node(1)
	s := 0.0
	for i := range a.V {
		s += a.V[i] * b.V[i]
	}
	out.V[0] = s
	t.backward = append(t.backward, func() {
		g := out.G[0]
		for i := range a.V {
			a.G[i] += g * b.V[i]
			b.G[i] += g * a.V[i]
		}
	})
	return out
}

// Mean averages a list of equal-length vectors.
func (t *Tape) Mean(vs []*Vec) *Vec {
	out := t.node(vs[0].Len())
	inv := 1.0 / float64(len(vs))
	for _, v := range vs {
		for i := range out.V {
			out.V[i] += v.V[i] * inv
		}
	}
	t.backward = append(t.backward, func() {
		for _, v := range vs {
			for i := range v.G {
				v.G[i] += out.G[i] * inv
			}
		}
	})
	return out
}

// WeightedSum computes Σ w_i · v_i where ws is a vector of len(vs)
// scalar weights (attention pooling).
func (t *Tape) WeightedSum(ws *Vec, vs []*Vec) *Vec {
	out := t.node(vs[0].Len())
	for j, v := range vs {
		for i := range out.V {
			out.V[i] += ws.V[j] * v.V[i]
		}
	}
	t.backward = append(t.backward, func() {
		for j, v := range vs {
			for i := range out.G {
				v.G[i] += out.G[i] * ws.V[j]
				ws.G[j] += out.G[i] * v.V[i]
			}
		}
	})
	return out
}

// Softmax returns the softmax of a (stable).
func (t *Tape) Softmax(a *Vec) *Vec {
	out := t.node(a.Len())
	max := math.Inf(-1)
	for _, v := range a.V {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range a.V {
		out.V[i] = math.Exp(v - max)
		sum += out.V[i]
	}
	for i := range out.V {
		out.V[i] /= sum
	}
	t.backward = append(t.backward, func() {
		// dL/da_i = y_i * (g_i - Σ_j g_j y_j)
		dot := 0.0
		for j := range out.V {
			dot += out.G[j] * out.V[j]
		}
		for i := range a.G {
			a.G[i] += out.V[i] * (out.G[i] - dot)
		}
	})
	return out
}

// CrossEntropy returns -log softmax(logits)[label] as a length-1 vector.
func (t *Tape) CrossEntropy(logits *Vec, label int) *Vec {
	probs := t.Softmax(logits)
	out := t.node(1)
	p := probs.V[label]
	if p < 1e-12 {
		p = 1e-12
	}
	out.V[0] = -math.Log(p)
	t.backward = append(t.backward, func() {
		g := out.G[0]
		probs.G[label] += -g / p
	})
	return out
}

// Backward seeds the gradient of loss (length-1) and runs the tape in
// reverse.
func (t *Tape) Backward(loss *Vec) {
	loss.G[0] = 1
	for i := len(t.backward) - 1; i >= 0; i-- {
		t.backward[i]()
	}
}
