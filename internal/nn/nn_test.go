package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericGrad estimates dLoss/dp.V[i] by central differences.
func numericGrad(p *Param, i int, loss func() float64) float64 {
	const eps = 1e-5
	orig := p.V[i]
	p.V[i] = orig + eps
	up := loss()
	p.V[i] = orig - eps
	down := loss()
	p.V[i] = orig
	return (up - down) / (2 * eps)
}

func TestMatVecGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewParam("w", 3, 4).Init(rng)
	x := []float64{0.5, -0.2, 0.3, 0.9}
	loss := func() float64 {
		tape := NewTape()
		xv := tape.Const(x)
		out := tape.MatVec(w, xv)
		l := tape.Dot(out, out)
		return l.V[0]
	}
	tape := NewTape()
	xv := tape.Const(x)
	out := tape.MatVec(w, xv)
	l := tape.Dot(out, out)
	tape.Backward(l)
	for i := range w.V {
		want := numericGrad(w, i, loss)
		if math.Abs(w.G[i]-want) > 1e-6 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, w.G[i], want)
		}
	}
}

func TestElementwiseGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewParam("p", 5, 1).Init(rng)
	build := func(tape *Tape) *Vec {
		x := tape.Use(p)
		a := tape.Sigmoid(x)
		b := tape.Tanh(x)
		c := tape.ReLU(x)
		d := tape.Mul(a, b)
		e := tape.Add(d, tape.Scale(c, 0.5))
		f := tape.Sub(e, b)
		return tape.Dot(f, f)
	}
	loss := func() float64 { return build(NewTape()).V[0] }
	tape := NewTape()
	l := build(tape)
	tape.Backward(l)
	for i := range p.V {
		want := numericGrad(p, i, loss)
		if math.Abs(p.G[i]-want) > 1e-5 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, p.G[i], want)
		}
	}
}

func TestSoftmaxCrossEntropyGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewParam("logits", 4, 1).Init(rng)
	label := 2
	loss := func() float64 {
		tape := NewTape()
		return tape.CrossEntropy(tape.Use(p), label).V[0]
	}
	tape := NewTape()
	l := tape.CrossEntropy(tape.Use(p), label)
	tape.Backward(l)
	for i := range p.V {
		want := numericGrad(p, i, loss)
		if math.Abs(p.G[i]-want) > 1e-6 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, p.G[i], want)
		}
	}
}

func TestConcatWeightedSumMeanGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewParam("p", 6, 1).Init(rng)
	build := func(tape *Tape) *Vec {
		x := tape.Use(p)
		a := tape.Const([]float64{1, 2, 3, 4, 5, 6})
		m := tape.Mean([]*Vec{x, a})
		ws := tape.Softmax(tape.Const([]float64{0.3, 0.7}))
		s := tape.WeightedSum(ws, []*Vec{m, x})
		c := tape.Concat(s, m)
		return tape.Dot(c, c)
	}
	loss := func() float64 { return build(NewTape()).V[0] }
	tape := NewTape()
	l := build(tape)
	tape.Backward(l)
	for i := range p.V {
		want := numericGrad(p, i, loss)
		if math.Abs(p.G[i]-want) > 1e-5 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, p.G[i], want)
		}
	}
}

func TestGRUCellGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var set Set
	cell := NewGRUCell(&set, "gru", 3, 4, rng)
	x1 := []float64{0.1, -0.4, 0.7}
	x2 := []float64{-0.3, 0.2, 0.5}
	build := func(tape *Tape) *Vec {
		h := cell.Zero(tape)
		h = cell.Step(tape, tape.Const(x1), h)
		h = cell.Step(tape, tape.Const(x2), h)
		return tape.Dot(h, h)
	}
	loss := func() float64 { return build(NewTape()).V[0] }
	tape := NewTape()
	l := build(tape)
	tape.Backward(l)
	for _, p := range set.All() {
		for i := 0; i < len(p.V); i += 5 { // sample for speed
			want := numericGrad(p, i, loss)
			if math.Abs(p.G[i]-want) > 1e-5 {
				t.Fatalf("%s grad[%d] = %v, numeric %v", p.Name, i, p.G[i], want)
			}
		}
	}
}

func TestAttentionGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var set Set
	att := NewAttention(&set, "att", 3, 4, rng)
	q := []float64{0.2, -0.1, 0.6}
	keys := [][]float64{{1, 0, 0.5}, {0, 1, -0.5}, {0.3, 0.3, 0.3}}
	build := func(tape *Tape) *Vec {
		ks := make([]*Vec, len(keys))
		for i, k := range keys {
			ks[i] = tape.Const(k)
		}
		out := att.Pool(tape, tape.Const(q), ks)
		return tape.Dot(out, out)
	}
	loss := func() float64 { return build(NewTape()).V[0] }
	tape := NewTape()
	l := build(tape)
	tape.Backward(l)
	for _, p := range set.All() {
		for i := range p.V {
			want := numericGrad(p, i, loss)
			if math.Abs(p.G[i]-want) > 1e-5 {
				t.Fatalf("%s grad[%d] = %v, numeric %v", p.Name, i, p.G[i], want)
			}
		}
	}
}

func TestGraphConvGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var set Set
	gc := NewGraphConv(&set, "gc", 3, rng)
	states := [][]float64{{0.1, 0.2, 0.3}, {-0.2, 0.4, 0.1}, {0.5, -0.5, 0.2}}
	inAdj := [][]int{{1}, {0, 2}, {}}
	outAdj := [][]int{{1}, {0}, {1}}
	build := func(tape *Tape) *Vec {
		ss := make([]*Vec, len(states))
		for i, s := range states {
			ss[i] = tape.Const(s)
		}
		out := gc.Propagate(tape, ss, inAdj, outAdj)
		total := out[0]
		for _, o := range out[1:] {
			total = tape.Add(total, o)
		}
		return tape.Dot(total, total)
	}
	loss := func() float64 { return build(NewTape()).V[0] }
	tape := NewTape()
	l := build(tape)
	tape.Backward(l)
	for _, p := range set.All() {
		for i := range p.V {
			want := numericGrad(p, i, loss)
			if math.Abs(p.G[i]-want) > 1e-5 {
				t.Fatalf("%s grad[%d] = %v, numeric %v", p.Name, i, p.G[i], want)
			}
		}
	}
}

func TestUseRowGradFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	emb := NewParam("emb", 5, 3).Init(rng)
	tape := NewTape()
	v := tape.UseRow(emb, 2)
	l := tape.Dot(v, v)
	tape.Backward(l)
	for i := 0; i < 5; i++ {
		g := emb.RowGrad(i)
		nonzero := g[0] != 0 || g[1] != 0 || g[2] != 0
		if i == 2 && !nonzero {
			t.Error("used row has zero gradient")
		}
		if i != 2 && nonzero {
			t.Errorf("unused row %d has gradient", i)
		}
	}
}

func TestAdamLearnsQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var set Set
	p := set.Add(NewParam("x", 3, 1).Init(rng))
	target := []float64{1.0, -2.0, 0.5}
	opt := NewAdam(0.05)
	for step := 0; step < 500; step++ {
		tape := NewTape()
		x := tape.Use(p)
		diff := tape.Sub(x, tape.Const(target))
		l := tape.Dot(diff, diff)
		tape.Backward(l)
		opt.Step(&set)
	}
	for i := range target {
		if math.Abs(p.V[i]-target[i]) > 1e-2 {
			t.Fatalf("param[%d] = %v, want %v", i, p.V[i], target[i])
		}
	}
}

func TestSGDLearns(t *testing.T) {
	var set Set
	p := set.Add(NewParam("x", 1, 1))
	opt := &SGD{LR: 0.1}
	for step := 0; step < 200; step++ {
		tape := NewTape()
		x := tape.Use(p)
		diff := tape.Sub(x, tape.Const([]float64{3}))
		l := tape.Dot(diff, diff)
		tape.Backward(l)
		opt.Step(&set)
	}
	if math.Abs(p.V[0]-3) > 1e-3 {
		t.Fatalf("x = %v, want 3", p.V[0])
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var set Set
	mlp := NewMLP(&set, "xor", 2, 8, 2, rng)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []int{0, 1, 1, 0}
	opt := NewAdam(0.02)
	for epoch := 0; epoch < 400; epoch++ {
		for i, in := range inputs {
			tape := NewTape()
			logits := mlp.Forward(tape, tape.Const(in))
			l := tape.CrossEntropy(logits, labels[i])
			tape.Backward(l)
			opt.Step(&set)
		}
	}
	for i, in := range inputs {
		tape := NewTape()
		logits := mlp.Forward(tape, tape.Const(in))
		pred := 0
		if logits.V[1] > logits.V[0] {
			pred = 1
		}
		if pred != labels[i] {
			t.Fatalf("XOR(%v) predicted %d", in, pred)
		}
	}
}

func TestSetNumParams(t *testing.T) {
	var set Set
	set.Add(NewParam("a", 2, 3), NewParam("b", 4, 1))
	if set.NumParams() != 10 {
		t.Errorf("NumParams = %d, want 10", set.NumParams())
	}
}

func TestMatVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	tape := NewTape()
	w := NewParam("w", 2, 3)
	tape.MatVec(w, tape.Const([]float64{1, 2}))
}

func TestGradClipping(t *testing.T) {
	var set Set
	p := set.Add(NewParam("x", 1, 1))
	p.G[0] = 1e9
	opt := NewAdam(0.1)
	opt.Step(&set)
	if math.Abs(p.V[0]) > 1.0 {
		t.Errorf("clipped step moved param to %v", p.V[0])
	}
}
