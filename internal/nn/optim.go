package nn

import "math"

// Adam implements the Adam optimizer over a parameter set.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	Clip    float64 // max gradient L2 norm per parameter tensor; 0 = off
	t       int
	m, v    map[*Param][]float64
	stepped bool
}

// NewAdam returns an Adam optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5.0,
		m: map[*Param][]float64{}, v: map[*Param][]float64{},
	}
}

// Step applies one update to every parameter and zeroes gradients.
func (a *Adam) Step(set *Set) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range set.All() {
		m := a.m[p]
		if m == nil {
			m = make([]float64, len(p.V))
			a.m[p] = m
		}
		v := a.v[p]
		if v == nil {
			v = make([]float64, len(p.V))
			a.v[p] = v
		}
		if a.Clip > 0 {
			norm := 0.0
			for _, g := range p.G {
				norm += g * g
			}
			norm = math.Sqrt(norm)
			if norm > a.Clip {
				scale := a.Clip / norm
				for i := range p.G {
					p.G[i] *= scale
				}
			}
		}
		for i, g := range p.G {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.V[i] -= a.LR * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + a.Eps)
		}
	}
	set.ZeroGrad()
}

// SGD is a plain stochastic-gradient-descent optimizer.
type SGD struct {
	LR float64
}

// Step applies one SGD update and zeroes gradients.
func (s *SGD) Step(set *Set) {
	for _, p := range set.All() {
		for i, g := range p.G {
			p.V[i] -= s.LR * g
		}
	}
	set.ZeroGrad()
}
