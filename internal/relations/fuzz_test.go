package relations

import "testing"

func FuzzParseGeneration(f *testing.F) {
	for _, r := range All() {
		info, _ := Lookup(r)
		f.Add(Verbalize(r, info.Example))
	}
	f.Add("")
	f.Add("random text with no predicate")
	f.Add("used for")
	f.Fuzz(func(t *testing.T, s string) {
		rel, tail, ok := ParseGeneration(s)
		if !ok {
			if rel != "" || tail != "" {
				t.Fatal("failed parse must return zero values")
			}
			return
		}
		if tail == "" {
			t.Fatal("successful parse with empty tail")
		}
		if !Valid(rel) {
			t.Fatalf("parsed unknown relation %q", rel)
		}
		// Classifying the tail never panics and yields a known tail type.
		_ = ClassifyTail(tail)
	})
}
