// Package relations defines the COSMO knowledge-relation taxonomy
// (Table 2 of the paper) and the data-driven relation-discovery procedure
// that mined it: starting from four seed relations, frequent predicate
// patterns in large-scale LLM generations are mined and canonicalized
// into 15 e-commerce commonsense relations with typed tails.
package relations

import "fmt"

// Relation is one of the 15 mined COSMO relation types.
type Relation string

// The COSMO relation taxonomy (paper Table 2).
const (
	UsedForFunc  Relation = "USED_FOR_FUNC" // Function / Usage: "dry face"
	UsedForEve   Relation = "USED_FOR_EVE"  // Event / Activity: "walk the dog"
	UsedForAud   Relation = "USED_FOR_AUD"  // Audience: "daycare worker"
	CapableOf    Relation = "CAPABLE_OF"    // Function / Usage: "hold snacks"
	UsedTo       Relation = "USED_TO"       // Function / Usage: "build a fence"
	UsedAs       Relation = "USED_AS"       // Concept / Product Type: "smart watch"
	IsA          Relation = "IS_A"          // Concept / Product Type: "normal suit"
	UsedOn       Relation = "USED_ON"       // Time / Season / Event: "late winter"
	UsedInLoc    Relation = "USED_IN_LOC"   // Location / Facility: "bedroom"
	UsedInBody   Relation = "USED_IN_BODY"  // Body Part: "sensitive skin"
	UsedWith     Relation = "USED_WITH"     // Complementary: "surface cover"
	UsedBy       Relation = "USED_BY"       // Audience: "cat owner"
	XInterestdIn Relation = "xIntersted_in" // Interest: "herbal medicine"
	XIsA         Relation = "xIs_A"         // Audience: "pregnant women"
	XWant        Relation = "xWant"         // Activity: "play tennis"
)

// TailType categorizes the tail node of a relation (paper Table 2).
type TailType string

// Tail types from the paper's Table 2.
const (
	TailFunction   TailType = "Function / Usage"
	TailEvent      TailType = "Event / Activity"
	TailAudience   TailType = "Audience"
	TailConcept    TailType = "Concept / Product Type"
	TailTime       TailType = "Time / Season / Event"
	TailLocation   TailType = "Location / Facility"
	TailBodyPart   TailType = "Body Part"
	TailComplement TailType = "Complementary"
	TailInterest   TailType = "Interest"
	TailActivity   TailType = "Activity"
)

// Info describes one relation: its tail type, a canonical surface pattern
// used in prompts and verbalization, and an example tail from the paper.
type Info struct {
	Relation Relation
	Tail     TailType
	// Pattern is the predicate surface form with %s as the tail slot.
	Pattern string
	Example string
	// Seed reports whether this was one of the four seed relations
	// (usedFor, capableOf, isA, cause lineage) used to bootstrap mining.
	Seed bool
}

// registry holds the full taxonomy in the paper's Table 2 order.
var registry = []Info{
	{UsedForFunc, TailFunction, "used for %s", "dry face", true},
	{UsedForEve, TailEvent, "used for %s", "walk the dog", true},
	{UsedForAud, TailAudience, "used for %s", "daycare worker", true},
	{CapableOf, TailFunction, "capable of %s", "hold snacks", true},
	{UsedTo, TailFunction, "used to %s", "build a fence", false},
	{UsedAs, TailConcept, "used as %s", "smart watch", false},
	{IsA, TailConcept, "is a %s", "normal suit", true},
	{UsedOn, TailTime, "used on %s", "late winter", false},
	{UsedInLoc, TailLocation, "used in %s", "bedroom", false},
	{UsedInBody, TailBodyPart, "used on %s", "sensitive skin", false},
	{UsedWith, TailComplement, "used with %s", "surface cover", false},
	{UsedBy, TailAudience, "used by %s", "cat owner", false},
	{XInterestdIn, TailInterest, "interested in %s", "herbal medicine", false},
	{XIsA, TailAudience, "is %s", "pregnant women", false},
	{XWant, TailActivity, "wants to %s", "play tennis", false},
}

var byName = func() map[Relation]Info {
	m := make(map[Relation]Info, len(registry))
	for _, info := range registry {
		m[info.Relation] = info
	}
	return m
}()

// All returns all 15 relations in taxonomy order.
func All() []Relation {
	out := make([]Relation, len(registry))
	for i, info := range registry {
		out[i] = info.Relation
	}
	return out
}

// Lookup returns the Info for r and whether r is known.
func Lookup(r Relation) (Info, bool) {
	info, ok := byName[r]
	return info, ok
}

// TailTypeOf returns the tail type for r, or "" if unknown.
func TailTypeOf(r Relation) TailType { return byName[r].Tail }

// Seeds returns the seed relations that bootstrap relation mining.
func Seeds() []Relation {
	var out []Relation
	for _, info := range registry {
		if info.Seed {
			out = append(out, info.Relation)
		}
	}
	return out
}

// Verbalize renders the triple surface form for relation r with tail t,
// e.g. Verbalize(CapableOf, "holding snacks") = "capable of holding snacks".
func Verbalize(r Relation, tail string) string {
	info, ok := byName[r]
	if !ok {
		return tail
	}
	return fmt.Sprintf(info.Pattern, tail)
}

// Count returns the number of relation types (15 in the paper).
func Count() int { return len(registry) }

// Valid reports whether r is a known relation.
func Valid(r Relation) bool { _, ok := byName[r]; return ok }
