package relations

import (
	"strings"
	"testing"
)

func TestAllFifteenRelations(t *testing.T) {
	if Count() != 15 {
		t.Fatalf("taxonomy has %d relations, paper Table 2 has 15", Count())
	}
	if len(All()) != 15 {
		t.Fatalf("All() returned %d", len(All()))
	}
	seen := map[Relation]bool{}
	for _, r := range All() {
		if seen[r] {
			t.Errorf("duplicate relation %s", r)
		}
		seen[r] = true
		if !Valid(r) {
			t.Errorf("relation %s not valid via Valid()", r)
		}
	}
}

func TestLookup(t *testing.T) {
	info, ok := Lookup(CapableOf)
	if !ok {
		t.Fatal("CapableOf not found")
	}
	if info.Tail != TailFunction {
		t.Errorf("CapableOf tail = %s", info.Tail)
	}
	if info.Example != "hold snacks" {
		t.Errorf("CapableOf example = %q", info.Example)
	}
	if _, ok := Lookup(Relation("NOPE")); ok {
		t.Error("unknown relation should not be found")
	}
}

func TestSeedsAreFour(t *testing.T) {
	// The paper starts from four seed relations (usedFor split into the
	// three USED_FOR_* plus capableOf and isA lineage). Our registry
	// marks the usedFor family, capableOf and isA as seeds.
	seeds := Seeds()
	if len(seeds) == 0 {
		t.Fatal("no seeds")
	}
	for _, s := range seeds {
		if !Valid(s) {
			t.Errorf("seed %s invalid", s)
		}
	}
}

func TestVerbalize(t *testing.T) {
	cases := []struct {
		r    Relation
		tail string
		want string
	}{
		{CapableOf, "holding snacks", "capable of holding snacks"},
		{UsedForEve, "walk the dog", "used for walk the dog"},
		{IsA, "normal suit", "is a normal suit"},
		{UsedBy, "cat owner", "used by cat owner"},
		{XWant, "play tennis", "wants to play tennis"},
	}
	for _, c := range cases {
		if got := Verbalize(c.r, c.tail); got != c.want {
			t.Errorf("Verbalize(%s,%q) = %q, want %q", c.r, c.tail, got, c.want)
		}
	}
	// Unknown relation falls back to the tail.
	if got := Verbalize(Relation("X"), "tail"); got != "tail" {
		t.Errorf("unknown relation verbalize = %q", got)
	}
}

func TestParseGeneration(t *testing.T) {
	cases := []struct {
		in       string
		wantRel  Relation
		wantTail string
	}{
		{"capable of holding snacks", CapableOf, "holding snacks"},
		{"used to build a fence", UsedTo, "build a fence"},
		{"used with surface cover", UsedWith, "surface cover"},
		{"used by cat owner", UsedBy, "cat owner"},
		{"is a smart watch", IsA, "smart watch"},
		{"Used For peeling potatoes.", UsedForFunc, "peeling potatoes"},
		{"used for walking the dog", UsedForEve, "walking the dog"},
		{"used for daycare worker", UsedForAud, "daycare worker"},
		{"used on sensitive skin", UsedInBody, "sensitive skin"},
		{"used on late winter", UsedOn, "late winter"},
		{"interested in herbal medicine", XInterestdIn, "herbal medicine"},
		{"wants to play tennis", XWant, "play tennis"},
		{"capable of being used in the bedroom", UsedInLoc, "the bedroom"},
	}
	for _, c := range cases {
		rel, tail, ok := ParseGeneration(c.in)
		if !ok {
			t.Errorf("ParseGeneration(%q) failed", c.in)
			continue
		}
		if rel != c.wantRel || tail != c.wantTail {
			t.Errorf("ParseGeneration(%q) = (%s,%q), want (%s,%q)",
				c.in, rel, tail, c.wantRel, c.wantTail)
		}
	}
}

func TestParseGenerationRejects(t *testing.T) {
	for _, s := range []string{"", "totally unrelated text", "used for", "capable of "} {
		if _, _, ok := ParseGeneration(s); ok {
			t.Errorf("ParseGeneration(%q) should fail", s)
		}
	}
}

func TestClassifyTail(t *testing.T) {
	cases := []struct {
		tail string
		want TailType
	}{
		{"daycare worker", TailAudience},
		{"cat owner", TailAudience},
		{"sensitive skin", TailBodyPart},
		{"walking the dog", TailEvent},
		{"attend a wedding", TailEvent},
		{"holding snacks", TailFunction},
		{"", TailConcept},
	}
	for _, c := range cases {
		if got := ClassifyTail(c.tail); got != c.want {
			t.Errorf("ClassifyTail(%q) = %s, want %s", c.tail, got, c.want)
		}
	}
}

func TestMinePatterns(t *testing.T) {
	gens := []string{
		"used for hiking", "used for biking", "used for camping",
		"capable of holding snacks", "capable of keeping warm",
		"used with a tripod",
		"random noise text",
	}
	pats := MinePatterns(gens, 2)
	if len(pats) != 2 {
		t.Fatalf("got %d patterns: %v", len(pats), pats)
	}
	if pats[0].Prefix != "used for" || pats[0].Count != 3 {
		t.Errorf("top pattern = %+v", pats[0])
	}
	if pats[1].Prefix != "capable of" || pats[1].Count != 2 {
		t.Errorf("second pattern = %+v", pats[1])
	}
}

func TestDiscoverTaxonomy(t *testing.T) {
	var gens []string
	for _, r := range All() {
		info, _ := Lookup(r)
		for i := 0; i < 3; i++ {
			gens = append(gens, Verbalize(r, info.Example))
		}
	}
	rels := DiscoverTaxonomy(gens, 2)
	found := map[Relation]bool{}
	for _, r := range rels {
		found[r] = true
	}
	// Every relation should be rediscovered from its own example surface
	// forms (a round-trip property of the taxonomy).
	for _, r := range All() {
		if !found[r] {
			info, _ := Lookup(r)
			t.Errorf("relation %s not rediscovered (example %q)", r,
				Verbalize(r, info.Example))
		}
	}
}

func TestVerbalizeParseRoundTrip(t *testing.T) {
	// For each relation, Verbalize followed by ParseGeneration recovers a
	// relation with the same tail type (the relation itself may refine).
	for _, r := range All() {
		info, _ := Lookup(r)
		surface := Verbalize(r, info.Example)
		rel, tail, ok := ParseGeneration(surface)
		if !ok {
			t.Errorf("round trip failed for %s: %q", r, surface)
			continue
		}
		if !strings.Contains(surface, tail) {
			t.Errorf("tail %q not in surface %q", tail, surface)
		}
		if TailTypeOf(rel) == "" {
			t.Errorf("parsed relation %s has no tail type", rel)
		}
	}
}
