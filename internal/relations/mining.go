package relations

import (
	"sort"
	"strings"
)

// PredicatePattern is a frequent surface pattern mined from generations,
// e.g. "used for", together with its count and the canonical relation it
// was manually mapped to during taxonomy construction.
type PredicatePattern struct {
	Prefix    string
	Count     int
	Canonical Relation
}

// prefixTable maps surface predicate prefixes to canonical relations.
// The USED_FOR_* split is resolved by tail-type classification (see
// ClassifyTail); at the pattern level all "used for" generations share
// the same prefix, exactly as in the paper's observation that "the
// product is capable of being used [Prep]" with different prepositions
// yields different tail types.
var prefixTable = []struct {
	prefix string
	rel    Relation
}{
	{"capable of being used as", UsedAs},
	{"capable of being used in", UsedInLoc},
	{"capable of being used on", UsedOn},
	{"capable of being used with", UsedWith},
	{"capable of being used by", UsedBy},
	{"capable of being used for", UsedForFunc},
	{"capable of being used to", UsedTo},
	{"capable of", CapableOf},
	{"used for", UsedForFunc},
	{"used to", UsedTo},
	{"used as", UsedAs},
	{"used on", UsedOn},
	{"used in", UsedInLoc},
	{"used with", UsedWith},
	{"used by", UsedBy},
	{"is a", IsA},
	{"is an", IsA},
	{"interested in", XInterestdIn},
	{"wants to", XWant},
	{"want to", XWant},
	{"is", XIsA}, // bare "is <audience>", e.g. "is pregnant women"
}

// ParseGeneration splits a generated knowledge string into its canonical
// relation and tail, e.g. "capable of holding snacks" →
// (CAPABLE_OF, "holding snacks"). The boolean reports whether any known
// predicate prefix matched.
func ParseGeneration(s string) (Relation, string, bool) {
	t := strings.ToLower(strings.TrimSpace(s))
	t = strings.TrimSuffix(t, ".")
	for _, e := range prefixTable {
		if strings.HasPrefix(t, e.prefix+" ") {
			tail := strings.TrimSpace(t[len(e.prefix):])
			if tail == "" {
				return "", "", false
			}
			return refineRelation(e.rel, tail), tail, true
		}
	}
	return "", "", false
}

// refineRelation splits the coarse "used for" bucket into the three
// USED_FOR_* relations by classifying the tail, and maps body-part tails
// of USED_ON to USED_IN_BODY, mirroring the manual canonicalization step.
func refineRelation(r Relation, tail string) Relation {
	switch r {
	case UsedForFunc:
		switch ClassifyTail(tail) {
		case TailAudience:
			return UsedForAud
		case TailEvent, TailActivity:
			return UsedForEve
		}
		return UsedForFunc
	case UsedOn:
		if ClassifyTail(tail) == TailBodyPart {
			return UsedInBody
		}
		return UsedOn
	case XIsA:
		// Bare "is X" is xIs_A only when X names an audience; otherwise
		// it is a plain concept statement.
		if ClassifyTail(tail) == TailAudience {
			return XIsA
		}
		return IsA
	default:
		return r
	}
}

var audienceWords = map[string]bool{
	"owner": true, "owners": true, "worker": true, "workers": true,
	"women": true, "men": true, "kids": true, "children": true,
	"adults": true, "baby": true, "babies": true, "teacher": true,
	"teachers": true, "nurse": true, "nurses": true, "athletes": true,
	"beginners": true, "professionals": true, "seniors": true,
	"students": true, "travelers": true, "gamers": true, "parents": true,
	"musicians": true, "hikers": true, "campers": true, "runners": true,
	"chefs": true, "mechanics": true, "fans": true,
}

var bodyParts = map[string]bool{
	"skin": true, "face": true, "hair": true, "hands": true, "hand": true,
	"feet": true, "foot": true, "eyes": true, "eye": true, "back": true,
	"neck": true, "knees": true, "knee": true, "scalp": true, "teeth": true,
	"nails": true, "lips": true, "wrist": true, "ears": true, "legs": true,
}

var eventVerbs = map[string]bool{
	"walk": true, "walking": true, "attend": true, "attending": true,
	"play": true, "playing": true, "go": true, "going": true,
	"run": true, "running": true, "hike": true, "hiking": true,
	"camp": true, "camping": true, "travel": true, "traveling": true,
	"cook": true, "cooking": true, "party": true, "exercise": true,
	"swim": true, "swimming": true, "bike": true, "biking": true,
	"fish": true, "fishing": true, "garden": true, "gardening": true,
	"celebrate": true, "celebrating": true, "wedding": true,
}

// ClassifyTail assigns a coarse tail type to a tail string using keyword
// heuristics; this implements the "tail types can be further canonicalized"
// step of the paper's relation-discovery procedure.
func ClassifyTail(tail string) TailType {
	words := strings.Fields(strings.ToLower(tail))
	if len(words) == 0 {
		return TailConcept
	}
	for _, w := range words {
		if bodyParts[w] {
			return TailBodyPart
		}
	}
	for _, w := range words {
		if audienceWords[w] {
			return TailAudience
		}
	}
	if eventVerbs[words[0]] {
		return TailEvent
	}
	for _, w := range words {
		if eventVerbs[w] {
			return TailEvent
		}
	}
	return TailFunction
}

// MinePatterns counts predicate prefixes across raw generations and
// returns patterns with count >= minSupport, most frequent first. This is
// the "mine the frequent predicate patterns to manually summarize the
// relations" step; the Canonical field carries the manual mapping.
func MinePatterns(generations []string, minSupport int) []PredicatePattern {
	counts := map[string]int{}
	for _, g := range generations {
		t := strings.ToLower(strings.TrimSpace(g))
		for _, e := range prefixTable {
			if strings.HasPrefix(t, e.prefix+" ") {
				counts[e.prefix]++
				break
			}
		}
	}
	var out []PredicatePattern
	for _, e := range prefixTable {
		if c := counts[e.prefix]; c >= minSupport {
			out = append(out, PredicatePattern{Prefix: e.prefix, Count: c, Canonical: e.rel})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Prefix < out[j].Prefix
	})
	return out
}

// DiscoverTaxonomy runs pattern mining and returns the set of distinct
// canonical relations with support, in descending frequency order —
// the data-driven taxonomy the paper reports in Table 2.
func DiscoverTaxonomy(generations []string, minSupport int) []Relation {
	seen := map[Relation]int{}
	for _, g := range generations {
		if r, _, ok := ParseGeneration(g); ok {
			seen[r]++
		}
	}
	var rels []Relation
	for r, c := range seen {
		if c >= minSupport {
			rels = append(rels, r)
		}
	}
	sort.Slice(rels, func(i, j int) bool {
		if seen[rels[i]] != seen[rels[j]] {
			return seen[rels[i]] > seen[rels[j]]
		}
		return rels[i] < rels[j]
	})
	return rels
}
