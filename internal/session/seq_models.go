package session

import "cosmo/internal/nn"

// FPMC factorizes personalized Markov chains. With anonymous sessions
// the user factor drops and the model reduces to a factorized first-order
// transition: score(j | last=i) = <T_i, E_j>.
type FPMC struct {
	*base
	trans *nn.Param
}

// NewFPMC builds an FPMC model.
func NewFPMC() *FPMC { return &FPMC{} }

// Fit trains the transition factors.
func (m *FPMC) Fit(ds *Dataset, cfg TrainConfig) {
	m.base = newBase("FPMC", ds.NumItems(), cfg.Dim, cfg)
	m.trans = m.set.Add(nn.NewParam("FPMC.trans", ds.NumItems(), cfg.Dim).Init(m.rng))
	m.trainLoop(ds, m.rep)
}

func (m *FPMC) rep(t *nn.Tape, hist Seq) *nn.Vec {
	last := hist.Items[len(hist.Items)-1]
	return t.UseRow(m.trans, last)
}

// Score ranks items for the history.
func (m *FPMC) Score(hist Seq) []float64 { return m.scoreWith(hist, m.rep) }

// GRU4Rec encodes the session with a gated recurrent unit (Hidasi et
// al., 2016) and scores items against the final hidden state.
type GRU4Rec struct {
	*base
	cell *nn.GRUCell
}

// NewGRU4Rec builds a GRU4Rec model.
func NewGRU4Rec() *GRU4Rec { return &GRU4Rec{} }

// Fit trains the model.
func (m *GRU4Rec) Fit(ds *Dataset, cfg TrainConfig) {
	m.base = newBase("GRU4Rec", ds.NumItems(), cfg.Hidden, cfg)
	m.cell = nn.NewGRUCell(&m.set, "GRU4Rec.cell", cfg.Dim, cfg.Hidden, m.rng)
	m.trainLoop(ds, m.rep)
}

func (m *GRU4Rec) rep(t *nn.Tape, hist Seq) *nn.Vec {
	h := m.cell.Zero(t)
	for _, it := range hist.Items {
		h = m.cell.Step(t, t.UseRow(m.items, it), h)
	}
	return h
}

// Score ranks items for the history.
func (m *GRU4Rec) Score(hist Seq) []float64 { return m.scoreWith(hist, m.rep) }

// STAMP applies attention over the history with the last item as the
// short-term priority signal (Liu et al., 2018): the session is the sum
// of attention-pooled history and the last item's embedding, mixed by an
// MLP.
type STAMP struct {
	*base
	att *nn.Attention
	mix *nn.MLP
}

// NewSTAMP builds a STAMP model.
func NewSTAMP() *STAMP { return &STAMP{} }

// Fit trains the model.
func (m *STAMP) Fit(ds *Dataset, cfg TrainConfig) {
	m.base = newBase("STAMP", ds.NumItems(), cfg.Dim, cfg)
	m.att = nn.NewAttention(&m.set, "STAMP.att", cfg.Dim, cfg.Hidden, m.rng)
	m.mix = nn.NewMLP(&m.set, "STAMP.mix", 2*cfg.Dim, cfg.Hidden, cfg.Dim, m.rng)
	m.trainLoop(ds, m.rep)
}

func (m *STAMP) rep(t *nn.Tape, hist Seq) *nn.Vec {
	embs := make([]*nn.Vec, len(hist.Items))
	for i, it := range hist.Items {
		embs[i] = t.UseRow(m.items, it)
	}
	last := embs[len(embs)-1]
	pooled := m.att.Pool(t, last, embs)
	return m.mix.Forward(t, t.Concat(pooled, last))
}

// Score ranks items for the history.
func (m *STAMP) Score(hist Seq) []float64 { return m.scoreWith(hist, m.rep) }

// CSRM combines an inner (current-session GRU) encoder with an external
// memory of recent session representations (Wang et al., 2019); a
// learned gate mixes the two.
type CSRM struct {
	*base
	cell   *nn.GRUCell
	gate   *nn.Linear
	memory [][]float64 // frozen representations of recent sessions
	memCap int
}

// NewCSRM builds a CSRM model.
func NewCSRM() *CSRM { return &CSRM{memCap: 64} }

// Fit trains the model, maintaining the external memory online.
func (m *CSRM) Fit(ds *Dataset, cfg TrainConfig) {
	m.base = newBase("CSRM", ds.NumItems(), cfg.Hidden, cfg)
	m.cell = nn.NewGRUCell(&m.set, "CSRM.cell", cfg.Dim, cfg.Hidden, m.rng)
	m.gate = nn.NewLinear(&m.set, "CSRM.gate", 2*cfg.Hidden, cfg.Hidden, m.rng)
	if m.memCap == 0 {
		m.memCap = 64
	}
	m.trainLoop(ds, m.rep)
}

func (m *CSRM) inner(t *nn.Tape, hist Seq) *nn.Vec {
	h := m.cell.Zero(t)
	for _, it := range hist.Items {
		h = m.cell.Step(t, t.UseRow(m.items, it), h)
	}
	return h
}

func (m *CSRM) rep(t *nn.Tape, hist Seq) *nn.Vec {
	h := m.inner(t, hist)
	// Update the external memory with a frozen copy of this session.
	snapshot := make([]float64, h.Len())
	copy(snapshot, h.V)
	m.memory = append(m.memory, snapshot)
	if len(m.memory) > m.memCap {
		m.memory = m.memory[len(m.memory)-m.memCap:]
	}
	if len(m.memory) < 2 {
		return h
	}
	// Outer memory: mean of recent session representations.
	mem := make([]float64, h.Len())
	for _, v := range m.memory {
		for i := range mem {
			mem[i] += v[i]
		}
	}
	for i := range mem {
		mem[i] /= float64(len(m.memory))
	}
	outer := t.Const(mem)
	g := t.Sigmoid(m.gate.Forward(t, t.Concat(h, outer)))
	// rep = g⊙h + (1-g)⊙outer = outer + g⊙(h - outer)
	return t.Add(outer, t.Mul(g, t.Sub(h, outer)))
}

// Score ranks items for the history.
func (m *CSRM) Score(hist Seq) []float64 { return m.scoreWith(hist, m.rep) }
