package session

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"cosmo/internal/catalog"
)

// exportRecord is the JSONL schema for one session.
type exportRecord struct {
	Split   string   `json:"split"` // train / dev / test
	Items   []string `json:"items"` // product IDs
	Queries []string `json:"queries"`
}

// WriteJSONL serializes the dataset (all three splits) as JSON lines,
// the interchange format teams use to hand session logs to external
// training jobs.
func (d *Dataset) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	emit := func(split string, seqs []Seq) error {
		for _, s := range seqs {
			items := make([]string, len(s.Items))
			for i, it := range s.Items {
				items[i] = d.Items[it]
			}
			if err := enc.Encode(exportRecord{Split: split, Items: items, Queries: s.Queries}); err != nil {
				return fmt.Errorf("session: encode jsonl: %w", err)
			}
		}
		return nil
	}
	for _, sp := range []struct {
		name string
		seqs []Seq
	}{{"train", d.Train}, {"dev", d.Dev}, {"test", d.Test}} {
		if err := emit(sp.name, sp.seqs); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL loads a dataset written by WriteJSONL. The category is not
// serialized; pass it explicitly.
func ReadJSONL(r io.Reader, category catalog.Category) (*Dataset, error) {
	d := &Dataset{Category: category, ItemIndex: map[string]int{}}
	dec := json.NewDecoder(r)
	for dec.More() {
		var rec exportRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("session: decode jsonl: %w", err)
		}
		seq := Seq{Items: make([]int, len(rec.Items)), Queries: rec.Queries}
		for i, id := range rec.Items {
			idx, ok := d.ItemIndex[id]
			if !ok {
				idx = len(d.Items)
				d.ItemIndex[id] = idx
				d.Items = append(d.Items, id)
			}
			seq.Items[i] = idx
		}
		switch rec.Split {
		case "train":
			d.Train = append(d.Train, seq)
		case "dev":
			d.Dev = append(d.Dev, seq)
		case "test":
			d.Test = append(d.Test, seq)
		default:
			return nil, fmt.Errorf("session: unknown split %q", rec.Split)
		}
	}
	return d, nil
}
