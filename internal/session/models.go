package session

import (
	"math/rand"

	"cosmo/internal/metrics"
	"cosmo/internal/nn"
)

// Recommender is the shared interface of all session models. Score takes
// the session history (all but the final target item) and returns one
// score per vocabulary item.
type Recommender interface {
	Name() string
	Fit(ds *Dataset, cfg TrainConfig)
	Score(hist Seq) []float64
}

// TrainConfig controls model training.
type TrainConfig struct {
	Dim    int
	Hidden int
	Epochs int
	LR     float64
	Seed   int64
	// MaxTrainSessions caps training work for tests; 0 = all.
	MaxTrainSessions int
}

// DefaultTrainConfig returns laptop-scale training settings. Dim 24 is
// the stable optimization regime for the graph readouts at this data
// scale; larger dims oscillate under the shared Adam settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Dim: 24, Hidden: 24, Epochs: 3, LR: 0.01, Seed: 5}
}

// base holds the machinery shared by the neural recommenders: the item
// embedding table and the scoring projection.
type base struct {
	name  string
	cfg   TrainConfig
	set   nn.Set
	items *nn.Param // item embeddings (V x Dim)
	out   *nn.Param // maps session rep -> item space when dims differ
	rng   *rand.Rand
}

func newBase(name string, numItems int, repDim int, cfg TrainConfig) *base {
	b := &base{name: name, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	b.items = b.set.Add(nn.NewParam(name+".items", numItems, cfg.Dim).Init(b.rng))
	if repDim != cfg.Dim {
		b.out = b.set.Add(nn.NewParam(name+".out", cfg.Dim, repDim).Init(b.rng))
	}
	return b
}

func (b *base) Name() string { return b.name }

// logitsFor computes dot(itemEmb_i, rep) for every item.
func (b *base) logitsFor(t *nn.Tape, rep *nn.Vec) *nn.Vec {
	if b.out != nil {
		rep = t.MatVec(b.out, rep)
	}
	return t.MatVec(b.items, rep)
}

// trainLoop runs the standard prefix-expansion training over sessions,
// delegating the session representation to repFn.
func (b *base) trainLoop(ds *Dataset, repFn func(t *nn.Tape, hist Seq) *nn.Vec) {
	opt := nn.NewAdam(b.cfg.LR)
	sessions := ds.Train
	if b.cfg.MaxTrainSessions > 0 && len(sessions) > b.cfg.MaxTrainSessions {
		sessions = sessions[:b.cfg.MaxTrainSessions]
	}
	order := b.rng.Perm(len(sessions))
	for epoch := 0; epoch < b.cfg.Epochs; epoch++ {
		b.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, si := range order {
			for _, ex := range Prefixes(sessions[si]) {
				hist := Seq{
					Items:   ex.Items[:len(ex.Items)-1],
					Queries: ex.Queries[:len(ex.Queries)-1],
				}
				target := ex.Items[len(ex.Items)-1]
				t := nn.NewTape()
				rep := repFn(t, hist)
				loss := t.CrossEntropy(b.logitsFor(t, rep), target)
				t.Backward(loss)
				opt.Step(&b.set)
			}
		}
	}
}

// scoreWith evaluates the representation function on a history.
func (b *base) scoreWith(hist Seq, repFn func(t *nn.Tape, hist Seq) *nn.Vec) []float64 {
	t := nn.NewTape()
	logits := b.logitsFor(t, repFn(t, hist))
	out := make([]float64, logits.Len())
	copy(out, logits.V)
	return out
}

// Evaluate computes Hits@K, NDCG@K and MRR@K for a model over test
// sessions (predicting the final item from the preceding history).
func Evaluate(m Recommender, test []Seq, k int) (hits, ndcg, mrr float64) {
	rm := metrics.NewRankMetrics(k)
	for _, seq := range test {
		if len(seq.Items) < 2 {
			continue
		}
		hist := Seq{
			Items:   seq.Items[:len(seq.Items)-1],
			Queries: seq.Queries[:len(seq.Queries)-1],
		}
		target := seq.Items[len(seq.Items)-1]
		scores := m.Score(hist)
		// Exclude history items? The paper ranks over the full item set;
		// we do the same but never the target's own position leak.
		rm.AddRank(metrics.RankOf(scores, target))
	}
	return rm.Hits(), rm.NDCG(), rm.MRR()
}
