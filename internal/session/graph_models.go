package session

import (
	"cosmo/internal/embedding"
	"cosmo/internal/nn"
)

// sessionGraph builds the directed session graph of SR-GNN: nodes are
// the unique items of the session, edges connect consecutive clicks.
type sessionGraph struct {
	nodes  []int // item ids
	nodeOf map[int]int
	inAdj  [][]int
	outAdj [][]int
	steps  []int // node index per session step
}

func buildSessionGraph(items []int) *sessionGraph {
	g := &sessionGraph{nodeOf: map[int]int{}}
	for _, it := range items {
		if _, ok := g.nodeOf[it]; !ok {
			g.nodeOf[it] = len(g.nodes)
			g.nodes = append(g.nodes, it)
		}
		g.steps = append(g.steps, g.nodeOf[it])
	}
	g.inAdj = make([][]int, len(g.nodes))
	g.outAdj = make([][]int, len(g.nodes))
	seen := map[[2]int]bool{}
	for i := 0; i+1 < len(items); i++ {
		a, b := g.nodeOf[items[i]], g.nodeOf[items[i+1]]
		if a == b || seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		g.outAdj[a] = append(g.outAdj[a], b)
		g.inAdj[b] = append(g.inAdj[b], a)
	}
	return g
}

// SRGNN transforms the session into a directed graph and learns item
// transition representations with gated graph propagation (Wu et al.,
// 2019); the session is read out with last-node-as-query attention.
type SRGNN struct {
	*base
	conv *nn.GraphConv
	att  *nn.Attention
	mix  *nn.MLP
}

// NewSRGNN builds an SR-GNN model.
func NewSRGNN() *SRGNN { return &SRGNN{} }

// Fit trains the model.
func (m *SRGNN) Fit(ds *Dataset, cfg TrainConfig) {
	m.base = newBase("SRGNN", ds.NumItems(), cfg.Dim, cfg)
	m.conv = nn.NewGraphConv(&m.set, "SRGNN.conv", cfg.Dim, m.rng)
	m.att = nn.NewAttention(&m.set, "SRGNN.att", cfg.Dim, cfg.Hidden, m.rng)
	m.mix = nn.NewMLP(&m.set, "SRGNN.mix", 2*cfg.Dim, cfg.Hidden, cfg.Dim, m.rng)
	m.trainLoop(ds, m.rep)
}

// graphStates runs graph propagation and returns per-node states.
func (m *SRGNN) graphStates(t *nn.Tape, g *sessionGraph) []*nn.Vec {
	states := make([]*nn.Vec, len(g.nodes))
	for i, it := range g.nodes {
		states[i] = t.UseRow(m.items, it)
	}
	return m.conv.Propagate(t, states, g.inAdj, g.outAdj)
}

func (m *SRGNN) rep(t *nn.Tape, hist Seq) *nn.Vec {
	g := buildSessionGraph(hist.Items)
	states := m.graphStates(t, g)
	last := states[g.steps[len(g.steps)-1]]
	pooled := m.att.Pool(t, last, states)
	return m.mix.Forward(t, t.Concat(pooled, last))
}

// Score ranks items for the history.
func (m *SRGNN) Score(hist Seq) []float64 { return m.scoreWith(hist, m.rep) }

// GCSAN extends SR-GNN with a self-attention pass over the propagated
// node states before readout (Xu et al., 2019).
type GCSAN struct {
	*base
	conv *nn.GraphConv
	self *nn.Attention
	att  *nn.Attention
	mix  *nn.MLP
}

// NewGCSAN builds a GC-SAN model.
func NewGCSAN() *GCSAN { return &GCSAN{} }

// Fit trains the model.
func (m *GCSAN) Fit(ds *Dataset, cfg TrainConfig) {
	m.base = newBase("GC-SAN", ds.NumItems(), cfg.Dim, cfg)
	m.conv = nn.NewGraphConv(&m.set, "GCSAN.conv", cfg.Dim, m.rng)
	m.self = nn.NewAttention(&m.set, "GCSAN.self", cfg.Dim, cfg.Hidden, m.rng)
	m.att = nn.NewAttention(&m.set, "GCSAN.att", cfg.Dim, cfg.Hidden, m.rng)
	m.mix = nn.NewMLP(&m.set, "GCSAN.mix", 2*cfg.Dim, cfg.Hidden, cfg.Dim, m.rng)
	m.trainLoop(ds, m.rep)
}

func (m *GCSAN) rep(t *nn.Tape, hist Seq) *nn.Vec {
	g := buildSessionGraph(hist.Items)
	states := make([]*nn.Vec, len(g.nodes))
	for i, it := range g.nodes {
		states[i] = t.UseRow(m.items, it)
	}
	states = m.conv.Propagate(t, states, g.inAdj, g.outAdj)
	// Self-attention: every node re-aggregates the whole graph.
	refined := make([]*nn.Vec, len(states))
	for i := range states {
		refined[i] = t.Add(states[i], m.self.Pool(t, states[i], states))
	}
	last := refined[g.steps[len(g.steps)-1]]
	pooled := m.att.Pool(t, last, refined)
	return m.mix.Forward(t, t.Concat(pooled, last))
}

// Score ranks items for the history.
func (m *GCSAN) Score(hist Seq) []float64 { return m.scoreWith(hist, m.rep) }

// globalGraph holds item co-occurrence neighbors mined from the training
// sessions — GCE-GNN's global-level graph.
type globalGraph struct {
	neighbors [][]int
}

func buildGlobalGraph(ds *Dataset, maxNeighbors int) *globalGraph {
	counts := make([]map[int]int, ds.NumItems())
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for _, s := range ds.Train {
		for i := 0; i < len(s.Items); i++ {
			for w := 1; w <= 2; w++ {
				if i+w < len(s.Items) && s.Items[i] != s.Items[i+w] {
					counts[s.Items[i]][s.Items[i+w]]++
					counts[s.Items[i+w]][s.Items[i]]++
				}
			}
		}
	}
	g := &globalGraph{neighbors: make([][]int, ds.NumItems())}
	for i, cs := range counts {
		type nc struct{ n, c int }
		var ns []nc
		for n, c := range cs {
			ns = append(ns, nc{n, c})
		}
		// Top-k by count, deterministic tie-break by item id.
		for len(ns) > 0 && len(g.neighbors[i]) < maxNeighbors {
			best := 0
			for j := 1; j < len(ns); j++ {
				if ns[j].c > ns[best].c || (ns[j].c == ns[best].c && ns[j].n < ns[best].n) {
					best = j
				}
			}
			g.neighbors[i] = append(g.neighbors[i], ns[best].n)
			ns[best] = ns[len(ns)-1]
			ns = ns[:len(ns)-1]
		}
	}
	return g
}

// GCEGNN aggregates item embeddings at two levels (Wang et al., 2020):
// a global co-occurrence graph over all training sessions and the local
// session graph, combined with soft attention readout.
type GCEGNN struct {
	*base
	global *globalGraph
	wg     *nn.Param // global-neighbor aggregation matrix
	conv   *nn.GraphConv
	att    *nn.Attention
	mix    *nn.MLP
}

// NewGCEGNN builds a GCE-GNN model.
func NewGCEGNN() *GCEGNN { return &GCEGNN{} }

// Fit trains the model.
func (m *GCEGNN) Fit(ds *Dataset, cfg TrainConfig) {
	m.base = newBase("GCE-GNN", ds.NumItems(), cfg.Dim, cfg)
	m.global = buildGlobalGraph(ds, 6)
	m.wg = m.set.Add(nn.NewParam("GCEGNN.wg", cfg.Dim, cfg.Dim).Init(m.rng))
	m.conv = nn.NewGraphConv(&m.set, "GCEGNN.conv", cfg.Dim, m.rng)
	m.att = nn.NewAttention(&m.set, "GCEGNN.att", cfg.Dim, cfg.Hidden, m.rng)
	m.mix = nn.NewMLP(&m.set, "GCEGNN.mix", 2*cfg.Dim, cfg.Hidden, cfg.Dim, m.rng)
	m.trainLoop(ds, m.rep)
}

// nodeInit builds the global-enhanced initial state of one item.
func (m *GCEGNN) nodeInit(t *nn.Tape, item int) *nn.Vec {
	own := t.UseRow(m.items, item)
	ns := m.global.neighbors[item]
	if len(ns) == 0 {
		return own
	}
	embs := make([]*nn.Vec, len(ns))
	for i, n := range ns {
		embs[i] = t.UseRow(m.items, n)
	}
	return t.Add(own, t.Tanh(t.MatVec(m.wg, t.Mean(embs))))
}

func (m *GCEGNN) rep(t *nn.Tape, hist Seq) *nn.Vec {
	g := buildSessionGraph(hist.Items)
	states := make([]*nn.Vec, len(g.nodes))
	for i, it := range g.nodes {
		states[i] = m.nodeInit(t, it)
	}
	states = m.conv.Propagate(t, states, g.inAdj, g.outAdj)
	last := states[g.steps[len(g.steps)-1]]
	pooled := m.att.Pool(t, last, states)
	return m.mix.Forward(t, t.Concat(pooled, last))
}

// Score ranks items for the history.
func (m *GCEGNN) Score(hist Seq) []float64 { return m.scoreWith(hist, m.rep) }

// KnowledgeFn produces the COSMO knowledge span for a (query, item)
// interaction. The benchmark wires COSMO-LM; tests may use the oracle.
type KnowledgeFn func(query string, productID string) string

// knowEmbDim is the hashed-embedding dimension for knowledge text; text
// needs more width than the item embeddings to avoid collision noise.
const knowEmbDim = 96

// COSMOGNN extends GCE-GNN with COSMO knowledge (§4.2.3): each step's
// final representation concatenates the GNN item state h_t with the
// transformed knowledge embedding ĝ_t of the (query, item) interaction;
// the session representation is the average over steps.
type COSMOGNN struct {
	*base
	inner     *GCEGNN
	knowledge KnowledgeFn
	emb       *embedding.Model
	transform *nn.MLP
	mix       *nn.MLP
	dsItems   []string // vocabulary captured at Fit time
}

// NewCOSMOGNN builds a COSMO-GNN with the given knowledge source.
func NewCOSMOGNN(knowledge KnowledgeFn) *COSMOGNN {
	return &COSMOGNN{knowledge: knowledge}
}

// Fit trains the model.
func (m *COSMOGNN) Fit(ds *Dataset, cfg TrainConfig) {
	m.base = newBase("COSMO-GNN", ds.NumItems(), cfg.Dim, cfg)
	m.dsItems = ds.Items
	m.inner = &GCEGNN{}
	m.inner.base = &base{name: "COSMO-GNN.gnn", cfg: cfg, rng: m.rng}
	m.inner.set = nn.Set{}
	// Share the item table with the outer model; register GNN params in
	// the outer set so one optimizer updates everything.
	m.inner.items = m.items
	m.inner.global = buildGlobalGraph(ds, 6)
	m.inner.wg = m.set.Add(nn.NewParam("COSMOGNN.wg", cfg.Dim, cfg.Dim).Init(m.rng))
	m.inner.conv = nn.NewGraphConv(&m.set, "COSMOGNN.conv", cfg.Dim, m.rng)
	m.inner.att = nn.NewAttention(&m.set, "COSMOGNN.att", cfg.Dim, cfg.Hidden, m.rng)
	m.inner.mix = nn.NewMLP(&m.set, "COSMOGNN.gmix", 2*cfg.Dim, cfg.Hidden, cfg.Dim, m.rng)
	m.emb = embedding.New(knowEmbDim)
	m.transform = nn.NewMLP(&m.set, "COSMOGNN.trans", knowEmbDim, cfg.Hidden, cfg.Dim, m.rng)
	m.mix = nn.NewMLP(&m.set, "COSMOGNN.mix", 4*cfg.Dim, cfg.Hidden, cfg.Dim, m.rng)
	m.trainLoop(ds, m.rep)
}

func (m *COSMOGNN) rep(t *nn.Tape, hist Seq) *nn.Vec {
	g := buildSessionGraph(hist.Items)
	states := make([]*nn.Vec, len(g.nodes))
	for i, it := range g.nodes {
		states[i] = m.inner.nodeInit(t, it)
	}
	states = m.inner.conv.Propagate(t, states, g.inAdj, g.outAdj)
	// Per-step [h_t ; ĝ_t], averaged over steps (paper §4.2.3).
	stepReps := make([]*nn.Vec, len(g.steps))
	var ghatLast *nn.Vec
	for s, node := range g.steps {
		q := ""
		if s < len(hist.Queries) {
			q = hist.Queries[s]
		}
		ktext := ""
		if m.knowledge != nil {
			ktext = m.knowledge(q, m.itemID(s, hist))
		}
		kvec := t.Const(m.emb.Embed(ktext))
		ghat := m.transform.Forward(t, kvec)
		stepReps[s] = t.Concat(states[node], ghat)
		ghatLast = ghat
	}
	avg := t.Mean(stepReps)
	last := states[g.steps[len(g.steps)-1]]
	// The final query's knowledge carries the freshest intent signal, so
	// it enters the readout directly besides the averaged step reps.
	return m.mix.Forward(t, t.Concat(avg, last, ghatLast))
}

// itemID maps step s back to the product ID for the knowledge lookup.
func (m *COSMOGNN) itemID(s int, hist Seq) string {
	if m.dsItems == nil || s >= len(hist.Items) {
		return ""
	}
	idx := hist.Items[s]
	if idx < 0 || idx >= len(m.dsItems) {
		return ""
	}
	return m.dsItems[idx]
}

// Score ranks items for the history.
func (m *COSMOGNN) Score(hist Seq) []float64 { return m.scoreWith(hist, m.rep) }
