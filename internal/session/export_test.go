package session

import (
	"bytes"
	"strings"
	"testing"
)

func TestSessionJSONLRoundTrip(t *testing.T) {
	cat := sessionWorld()
	ds := Build(cat, ElectronicsConfig(120))
	var buf bytes.Buffer
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf, ds.Category)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Train) != len(ds.Train) || len(back.Dev) != len(ds.Dev) || len(back.Test) != len(ds.Test) {
		t.Fatalf("split sizes differ: %d/%d/%d vs %d/%d/%d",
			len(back.Train), len(back.Dev), len(back.Test),
			len(ds.Train), len(ds.Dev), len(ds.Test))
	}
	// Item identity survives through the ID remapping.
	for i, s := range ds.Train {
		b := back.Train[i]
		if len(s.Items) != len(b.Items) {
			t.Fatalf("train %d length differs", i)
		}
		for j := range s.Items {
			if ds.Items[s.Items[j]] != back.Items[b.Items[j]] {
				t.Fatalf("train %d item %d: %s vs %s", i, j,
					ds.Items[s.Items[j]], back.Items[b.Items[j]])
			}
			if s.Queries[j] != b.Queries[j] {
				t.Fatalf("train %d query %d differs", i, j)
			}
		}
	}
}

func TestSessionReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{bad"), "x"); err == nil {
		t.Error("garbage should error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"split":"nope","items":[],"queries":[]}`), "x"); err == nil {
		t.Error("unknown split should error")
	}
	ds, err := ReadJSONL(strings.NewReader(""), "x")
	if err != nil || ds.NumItems() != 0 {
		t.Errorf("empty input: %v %v", ds, err)
	}
}
