package session

import (
	"strings"

	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
)

// OracleKnowledge returns a KnowledgeFn backed by the catalog's ground
// truth: the intent of the product that matches the step's query. It
// bounds what a perfect COSMO-LM could supply; benchmarks wire the real
// COSMO-LM instead.
func OracleKnowledge(cat *catalog.Catalog) KnowledgeFn {
	return func(query string, productID string) string {
		p, ok := cat.ByID(productID)
		if !ok {
			return ""
		}
		qWord := query
		if i := strings.IndexByte(query, ' '); i >= 0 {
			qWord = query[:i]
		}
		for _, in := range cat.IntentsOf(p) {
			if behavior.BroadQuery(in) == qWord || strings.Contains(query, in.Tail) {
				return in.Surface()
			}
		}
		return ""
	}
}
