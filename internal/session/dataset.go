// Package session reproduces the session-based recommendation experiment
// of §4.2: next-item prediction over one-week session logs in the
// clothing and electronics domains (Table 7), comparing FPMC, GRU4Rec,
// STAMP, CSRM, SR-GNN, GC-SAN, GCE-GNN and the knowledge-augmented
// COSMO-GNN (Table 8) on Hits@10, NDCG@10 and MRR@10.
package session

import (
	"math/rand"

	"cosmo/internal/behavior"
	"cosmo/internal/catalog"
)

// Seq is one session with item indices into the dataset vocabulary and
// the query issued before each interaction.
type Seq struct {
	Items   []int
	Queries []string
}

// Dataset is the train/dev/test split for one domain, following the
// paper's 5/1/1-day protocol (first five days train, day six dev, day
// seven test).
type Dataset struct {
	Category  catalog.Category
	Items     []string // vocabulary: product IDs
	ItemIndex map[string]int
	Train     []Seq
	Dev       []Seq
	Test      []Seq
}

// NumItems returns the vocabulary size.
func (d *Dataset) NumItems() int { return len(d.Items) }

// BuildConfig controls dataset construction.
type BuildConfig struct {
	Seed     int64
	Sessions int
	Category catalog.Category
	// MeanLength and QueryChurn shape Table 7's per-domain statistics.
	MeanLength float64
	QueryChurn float64
}

// ClothingConfig mirrors Table 7's clothing row shape (shorter sessions,
// fewer unique queries).
func ClothingConfig(sessions int) BuildConfig {
	return BuildConfig{
		Seed: 31, Sessions: sessions, Category: catalog.Clothing,
		MeanLength: 8.8, QueryChurn: 0.08,
	}
}

// ElectronicsConfig mirrors Table 7's electronics row shape (longer
// sessions, more query reformulation).
func ElectronicsConfig(sessions int) BuildConfig {
	return BuildConfig{
		Seed: 32, Sessions: sessions, Category: catalog.Electronics,
		MeanLength: 12.3, QueryChurn: 0.35,
	}
}

// Build simulates sessions over the catalog and splits them 5/1/1.
func Build(cat *catalog.Catalog, cfg BuildConfig) *Dataset {
	sessions := behavior.SimulateSessions(cat, behavior.SessionConfig{
		Seed: cfg.Seed, Sessions: cfg.Sessions, Category: cfg.Category,
		MeanLength: cfg.MeanLength, QueryChurn: cfg.QueryChurn,
	})
	ds := &Dataset{Category: cfg.Category, ItemIndex: map[string]int{}}
	for _, p := range cat.InCategory(cfg.Category) {
		ds.ItemIndex[p.ID] = len(ds.Items)
		ds.Items = append(ds.Items, p.ID)
	}
	seqs := make([]Seq, 0, len(sessions))
	for _, s := range sessions {
		if len(s.Items) < 2 {
			continue
		}
		seq := Seq{Items: make([]int, len(s.Items)), Queries: s.Queries}
		for i, id := range s.Items {
			seq.Items[i] = ds.ItemIndex[id]
		}
		seqs = append(seqs, seq)
	}
	// Deterministic shuffle then day-based split 5/1/1.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	rng.Shuffle(len(seqs), func(i, j int) { seqs[i], seqs[j] = seqs[j], seqs[i] })
	n := len(seqs)
	trainEnd := n * 5 / 7
	devEnd := n * 6 / 7
	ds.Train = seqs[:trainEnd]
	ds.Dev = seqs[trainEnd:devEnd]
	ds.Test = seqs[devEnd:]
	return ds
}

// Stats reports the Table 7 quantities for one split.
type Stats struct {
	Sessions        int
	AvgSessLen      float64
	AvgQueryLen     float64 // queries per session (one per step)
	AvgUniqQueryLen float64 // distinct queries per session
}

// ComputeStats summarizes a list of sessions.
func ComputeStats(seqs []Seq) Stats {
	s := Stats{Sessions: len(seqs)}
	if len(seqs) == 0 {
		return s
	}
	totalLen, totalQ, totalUniq := 0.0, 0.0, 0.0
	for _, seq := range seqs {
		totalLen += float64(len(seq.Items))
		totalQ += float64(len(seq.Queries))
		uniq := map[string]bool{}
		for _, q := range seq.Queries {
			uniq[q] = true
		}
		totalUniq += float64(len(uniq))
	}
	n := float64(len(seqs))
	s.AvgSessLen = totalLen / n
	s.AvgQueryLen = totalQ / n
	s.AvgUniqQueryLen = totalUniq / n
	return s
}

// Prefixes expands a session into (prefix, target) training examples.
func Prefixes(seq Seq) []Seq {
	var out []Seq
	for k := 1; k < len(seq.Items); k++ {
		out = append(out, Seq{
			Items:   seq.Items[:k+1], // last element is the target
			Queries: seq.Queries[:k+1],
		})
	}
	return out
}
