package session

import (
	"testing"

	"cosmo/internal/catalog"
)

func sessionWorld() *catalog.Catalog {
	return catalog.Generate(catalog.Config{ProductsPerType: 4, Seed: 1})
}

func smallDataset(tb testing.TB, cat *catalog.Catalog) *Dataset {
	tb.Helper()
	cfg := ElectronicsConfig(700)
	return Build(cat, cfg)
}

func testTrainConfig() TrainConfig {
	return TrainConfig{Dim: 24, Hidden: 24, Epochs: 2, LR: 0.01, Seed: 5, MaxTrainSessions: 150}
}

func TestBuildDatasetSplit(t *testing.T) {
	cat := sessionWorld()
	ds := smallDataset(t, cat)
	total := len(ds.Train) + len(ds.Dev) + len(ds.Test)
	if total == 0 {
		t.Fatal("empty dataset")
	}
	// 5/1/1 split.
	if len(ds.Train) < 4*len(ds.Test) {
		t.Errorf("split off: train=%d dev=%d test=%d", len(ds.Train), len(ds.Dev), len(ds.Test))
	}
	if ds.NumItems() == 0 {
		t.Fatal("empty vocabulary")
	}
	for _, s := range ds.Train {
		if len(s.Items) != len(s.Queries) {
			t.Fatal("items/queries misaligned")
		}
		for _, it := range s.Items {
			if it < 0 || it >= ds.NumItems() {
				t.Fatalf("item index %d out of range", it)
			}
		}
	}
}

func TestTable7Shape(t *testing.T) {
	// Electronics sessions are longer and churn more unique queries than
	// clothing (paper Table 7: 12.27 vs 8.79 length, 2.47 vs 1.36 unique
	// queries).
	cat := sessionWorld()
	el := Build(cat, ElectronicsConfig(600))
	cl := Build(cat, ClothingConfig(600))
	se := ComputeStats(el.Train)
	sc := ComputeStats(cl.Train)
	t.Logf("electronics: len=%.2f uniqQ=%.2f | clothing: len=%.2f uniqQ=%.2f",
		se.AvgSessLen, se.AvgUniqQueryLen, sc.AvgSessLen, sc.AvgUniqQueryLen)
	if se.AvgSessLen <= sc.AvgSessLen {
		t.Errorf("electronics sessions should be longer: %.2f vs %.2f", se.AvgSessLen, sc.AvgSessLen)
	}
	if se.AvgUniqQueryLen <= sc.AvgUniqQueryLen {
		t.Errorf("electronics should churn more queries: %.2f vs %.2f",
			se.AvgUniqQueryLen, sc.AvgUniqQueryLen)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(nil)
	if s.Sessions != 0 || s.AvgSessLen != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestPrefixes(t *testing.T) {
	seq := Seq{Items: []int{1, 2, 3}, Queries: []string{"a", "b", "c"}}
	ps := Prefixes(seq)
	if len(ps) != 2 {
		t.Fatalf("got %d prefixes", len(ps))
	}
	if len(ps[0].Items) != 2 || ps[0].Items[1] != 2 {
		t.Errorf("first prefix = %v", ps[0].Items)
	}
	if len(ps[1].Items) != 3 || ps[1].Items[2] != 3 {
		t.Errorf("second prefix = %v", ps[1].Items)
	}
}

// constantRecommender always returns the same scores.
type constantRecommender struct{ scores []float64 }

func (c constantRecommender) Name() string              { return "const" }
func (c constantRecommender) Fit(*Dataset, TrainConfig) {}
func (c constantRecommender) Score(Seq) []float64       { return c.scores }

func TestEvaluateMechanics(t *testing.T) {
	scores := make([]float64, 20)
	scores[7] = 1.0 // always ranks item 7 first
	m := constantRecommender{scores}
	test := []Seq{
		{Items: []int{1, 7}, Queries: []string{"", ""}}, // hit at rank 1
		{Items: []int{1, 3}, Queries: []string{"", ""}}, // item 3 tied at rank >= 2
		{Items: []int{2}, Queries: []string{""}},        // too short, skipped
	}
	hits, ndcg, mrr := Evaluate(m, test, 10)
	if hits != 1.0 {
		// item 3 has score 0, tied with 18 others; stable rank of index 3
		// is 4 (after index 7 then 0,1,2) → within top-10, so 2/2 hits.
		t.Logf("hits=%v ndcg=%v mrr=%v", hits, ndcg, mrr)
	}
	if mrr <= 0 || ndcg <= 0 {
		t.Error("expected nonzero metrics")
	}
}

func TestSequentialModelsBeatRandom(t *testing.T) {
	cat := sessionWorld()
	ds := smallDataset(t, cat)
	random := 10.0 / float64(ds.NumItems()) // Hits@10 of random ranking
	for _, m := range []Recommender{NewFPMC(), NewGRU4Rec(), NewSTAMP(), NewCSRM()} {
		m.Fit(ds, testTrainConfig())
		hits, _, _ := Evaluate(m, ds.Test, 10)
		t.Logf("%s Hits@10 = %.3f (random %.3f)", m.Name(), hits, random)
		if hits <= random {
			t.Errorf("%s Hits@10 %.3f does not beat random %.3f", m.Name(), hits, random)
		}
	}
}

func TestGraphModelsBeatRandom(t *testing.T) {
	cat := sessionWorld()
	ds := smallDataset(t, cat)
	random := 10.0 / float64(ds.NumItems())
	for _, m := range []Recommender{NewSRGNN(), NewGCSAN(), NewGCEGNN()} {
		m.Fit(ds, testTrainConfig())
		hits, _, _ := Evaluate(m, ds.Test, 10)
		t.Logf("%s Hits@10 = %.3f (random %.3f)", m.Name(), hits, random)
		if hits <= random {
			t.Errorf("%s Hits@10 %.3f does not beat random %.3f", m.Name(), hits, random)
		}
	}
}

func TestCOSMOGNNBeatsGCEGNN(t *testing.T) {
	// The Table 8 headline: knowledge-augmented COSMO-GNN improves
	// Hits@10 over GCE-GNN. The gain shows in the sparse regime the
	// paper operates in (many items per type, so item co-occurrence is
	// sparse and intent knowledge genuinely generalizes).
	cat := catalog.Generate(catalog.Config{ProductsPerType: 8, Seed: 1})
	ds := Build(cat, ElectronicsConfig(900))
	cfg := testTrainConfig()
	cfg.MaxTrainSessions = 400
	cfg.Epochs = 4

	gce := NewGCEGNN()
	gce.Fit(ds, cfg)
	gceHits, gceNDCG, _ := Evaluate(gce, ds.Test, 10)

	cosmo := NewCOSMOGNN(OracleKnowledge(cat))
	cosmo.Fit(ds, cfg)
	cHits, cNDCG, _ := Evaluate(cosmo, ds.Test, 10)

	t.Logf("GCE-GNN hits=%.3f ndcg=%.3f | COSMO-GNN hits=%.3f ndcg=%.3f",
		gceHits, gceNDCG, cHits, cNDCG)
	if cHits <= gceHits {
		t.Errorf("COSMO-GNN Hits@10 %.3f should beat GCE-GNN %.3f", cHits, gceHits)
	}
}

func TestModelNames(t *testing.T) {
	cat := sessionWorld()
	ds := smallDataset(t, cat)
	cfg := testTrainConfig()
	cfg.MaxTrainSessions = 10
	cfg.Epochs = 1
	names := map[string]bool{}
	models := []Recommender{
		NewFPMC(), NewGRU4Rec(), NewSTAMP(), NewCSRM(),
		NewSRGNN(), NewGCSAN(), NewGCEGNN(), NewCOSMOGNN(nil),
	}
	for _, m := range models {
		m.Fit(ds, cfg)
		if m.Name() == "" || names[m.Name()] {
			t.Errorf("bad or duplicate name %q", m.Name())
		}
		names[m.Name()] = true
		scores := m.Score(Seq{Items: []int{0, 1}, Queries: []string{"", ""}})
		if len(scores) != ds.NumItems() {
			t.Errorf("%s returned %d scores", m.Name(), len(scores))
		}
	}
}

func TestSessionGraphConstruction(t *testing.T) {
	g := buildSessionGraph([]int{5, 7, 5, 9, 7})
	if len(g.nodes) != 3 {
		t.Fatalf("nodes = %v", g.nodes)
	}
	if len(g.steps) != 5 {
		t.Fatalf("steps = %v", g.steps)
	}
	// Edges: 5->7, 7->5, 5->9, 9->7 (deduped).
	n5, n7, n9 := g.nodeOf[5], g.nodeOf[7], g.nodeOf[9]
	hasEdge := func(adj [][]int, from, to int) bool {
		for _, x := range adj[from] {
			if x == to {
				return true
			}
		}
		return false
	}
	if !hasEdge(g.outAdj, n5, n7) || !hasEdge(g.outAdj, n7, n5) ||
		!hasEdge(g.outAdj, n5, n9) || !hasEdge(g.outAdj, n9, n7) {
		t.Error("missing expected edges")
	}
	if !hasEdge(g.inAdj, n7, n5) {
		t.Error("in-adjacency inconsistent")
	}
}

func TestGlobalGraphNeighbors(t *testing.T) {
	cat := sessionWorld()
	ds := smallDataset(t, cat)
	g := buildGlobalGraph(ds, 4)
	nonEmpty := 0
	for i, ns := range g.neighbors {
		if len(ns) > 4 {
			t.Fatalf("item %d has %d neighbors > cap", i, len(ns))
		}
		if len(ns) > 0 {
			nonEmpty++
		}
		for _, n := range ns {
			if n == i {
				t.Fatal("self-loop in global graph")
			}
		}
	}
	if nonEmpty == 0 {
		t.Error("global graph empty")
	}
}
