// Command cosmo-lint runs the project's static analyzer over the
// module: determinism (seeded-rand, wallclock), lock and atomic
// hygiene (mutex-hygiene, atomic-hygiene), bounded serving memory
// (unbounded-append), error discipline (dropped-error,
// sentinel-compare), serving-path contracts (frozen-serving,
// ctx-propagation), overflow safety (unchecked-narrowing), and
// hot-path allocation certification (alloc-free). See internal/lint
// for the checks and DESIGN.md for the invariants they encode.
//
// Loading and checking fan out across a worker pool; the finding order
// is deterministic and identical for every -workers value.
//
// Usage:
//
//	go run ./cmd/cosmo-lint ./...
//	go run ./cmd/cosmo-lint -json -workers 8 ./internal/serving
//	go run ./cmd/cosmo-lint -checks seeded-rand,wallclock ./...
//	go run ./cmd/cosmo-lint -severity error ./...
//
// Exit status: 0 clean (no findings at or above -severity), 1
// findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cosmo/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	chdir := flag.String("C", ".", "directory inside the module to lint from")
	workers := flag.Int("workers", 0, "parallel load/check workers (<=0 means GOMAXPROCS)")
	severity := flag.String("severity", string(lint.SeverityWarn), "minimum severity that fails the run (warn|error); all findings are still printed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cosmo-lint [-json] [-checks c1,c2] [-C dir] [-workers n] [-severity warn|error] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Packages are ./... (the whole module, the default), a directory,\nor a dir/... prefix. Checks:\n")
		for _, c := range lint.AllChecks() {
			fmt.Fprintf(os.Stderr, "  %-19s [%s] %s\n", c.Name, c.Severity, c.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	gate, err := lint.ParseSeverity(*severity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmo-lint:", err)
		return 2
	}
	root, err := findModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmo-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmo-lint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmo-lint:", err)
		return 2
	}
	pkgs, err = filterPackages(loader, pkgs, flag.Args(), root, *chdir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmo-lint:", err)
		return 2
	}

	cfg := lint.DefaultConfig()
	if *checks != "" {
		known := map[string]bool{}
		for _, c := range lint.AllChecks() {
			known[c.Name] = true
		}
		for _, name := range strings.Split(*checks, ",") {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "cosmo-lint: unknown check %q\n", name)
				return 2
			}
			cfg.Checks = append(cfg.Checks, name)
		}
	}

	findings := lint.RunParallel(pkgs, cfg, *workers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "cosmo-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if gating := lint.CountAtLeast(findings, gate); gating > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "cosmo-lint: %d finding(s) at severity >= %s\n", gating, gate)
		}
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// filterPackages keeps the packages matching the argument patterns:
// "./..." (everything), "dir/..." (a subtree), or a plain directory. A
// plain directory outside the walked set (e.g. a testdata fixture
// package) is loaded explicitly.
func filterPackages(loader *lint.Loader, pkgs []*lint.Package, patterns []string, root, chdir string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	base, err := filepath.Abs(chdir)
	if err != nil {
		return nil, err
	}
	var out []*lint.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		subtree := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			subtree = true
			pat = rest
			if pat == "." || pat == "" {
				for _, p := range pkgs {
					if !seen[p.Dir] {
						seen[p.Dir] = true
						out = append(out, p)
					}
				}
				continue
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		matched := false
		for _, p := range pkgs {
			ok := p.Dir == dir
			if subtree && !ok {
				ok = strings.HasPrefix(p.Dir+string(filepath.Separator), dir+string(filepath.Separator))
			}
			if ok && !seen[p.Dir] {
				seen[p.Dir] = true
				out = append(out, p)
				matched = true
			} else if ok {
				matched = true
			}
		}
		if !matched && !subtree {
			// Not in the module walk (testdata and friends): load directly.
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				return nil, fmt.Errorf("pattern %q matches no packages (module root %s): %v", pat, root, err)
			}
			if !seen[pkg.Dir] {
				seen[pkg.Dir] = true
				out = append(out, pkg)
			}
			matched = true
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages (module root %s)", pat, root)
		}
	}
	return out, nil
}
