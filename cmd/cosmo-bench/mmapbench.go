// The -mmapbench harness: heap ReadSnapshot vs zero-copy MapSnapshot
// on the ScaledKG artifact, measuring what the mmap serving path is
// for — cold start to first answer and resident footprint per edge.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cosmo/internal/experiments"
	"cosmo/internal/kg"
)

// mmapResult is one loader's measurement in the BENCH_9 output.
type mmapResult struct {
	Name             string  `json:"name"`
	Factor           int     `json:"factor"`
	Nodes            int     `json:"nodes"`
	Edges            int     `json:"edges"`
	FileBytes        int64   `json:"file_bytes"`
	ColdStartNs      int64   `json:"cold_start_ns"`
	FirstQueryNs     int64   `json:"first_query_ns"`
	IntentionsNsOp   int64   `json:"intentions_ns_per_op"`
	RelatedNsOp      int64   `json:"related_ns_per_op"`
	HeapBytes        uint64  `json:"heap_bytes"`
	HeapBytesPerEdge float64 `json:"heap_bytes_per_edge"`
	RSSBytes         int64   `json:"rss_bytes"`        // /proc/self/smaps_rollup delta; -1 where unavailable
	RSSBytesPerEdge  float64 `json:"rss_bytes_per_edge"`
	Mapped           bool    `json:"mapped"` // false on the portable fallback build
}

// mmapSummary is the headline comparison record appended to the two
// loader records.
type mmapSummary struct {
	Name              string  `json:"name"`
	Factor            int     `json:"factor"`
	Edges             int     `json:"edges"`
	ColdStartSpeedup  float64 `json:"cold_start_speedup"`
	FirstAnswerNsHeap int64   `json:"ns_to_first_answer_heap"`
	FirstAnswerNsMmap int64   `json:"ns_to_first_answer_mmap"`
	HeapReduction     float64 `json:"heap_bytes_per_edge_reduction"`
}

// readRSS returns the process resident set in bytes from
// /proc/self/smaps_rollup (Linux), or ok=false where the file (or the
// Rss field) is unavailable.
func readRSS() (int64, bool) {
	f, err := os.Open("/proc/self/smaps_rollup")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Rss:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}

// sampleHeads returns a deterministic sample of product heads for the
// hot-query measurements.
func sampleHeads(s *kg.Snapshot, n int) []string {
	var heads []string
	for _, node := range s.Nodes() {
		if node.Type == kg.NodeProduct {
			heads = append(heads, node.ID)
			if len(heads) == n {
				break
			}
		}
	}
	return heads
}

// measureLoader runs one loader through the cold-start / first-query /
// footprint protocol. load must construct a fully usable snapshot from
// the path; the returned snapshot is closed here.
func measureLoader(name string, factor int, path string, fileBytes int64,
	load func(string) (*kg.Snapshot, error)) (mmapResult, error) {
	res := mmapResult{Name: name, Factor: factor, FileBytes: fileBytes, RSSBytes: -1}

	// GC fences isolate the heap delta attributable to the loaded
	// snapshot; RSS is sampled at the same fence points. Two cycles per
	// fence: sync.Pool contents survive one collection in the victim
	// cache and would otherwise bleed between the two loader runs.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	rssBefore, rssOK := readRSS()

	start := time.Now()
	s, err := load(path)
	if err != nil {
		return res, err
	}
	res.ColdStartNs = time.Since(start).Nanoseconds()

	// First query: the price of the first answer out of a cold loader.
	// For mmap this includes the lazy checksum of every section the
	// query touches (byHead + edge arrays); for heap it is pure lookup.
	heads := sampleHeads(s, 512)
	if len(heads) == 0 {
		s.Close() //cosmo:lint-ignore dropped-error already on the error path
		return res, fmt.Errorf("cosmo-bench: no product heads at factor %d", factor)
	}
	start = time.Now()
	seq := s.IntentionsFor(heads[0])
	for i := 0; i < seq.Len(); i++ {
		_ = seq.At(i)
	}
	res.FirstQueryNs = time.Since(start).Nanoseconds()

	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		res.HeapBytes = after.HeapAlloc - before.HeapAlloc
	}
	if rssAfter, ok := readRSS(); ok && rssOK && rssAfter > rssBefore {
		res.RSSBytes = rssAfter - rssBefore
	}

	res.Nodes, res.Edges = s.NumNodes(), s.NumEdges()
	res.Mapped = s.Mapped()
	if res.Edges > 0 {
		res.HeapBytesPerEdge = float64(res.HeapBytes) / float64(res.Edges)
		if res.RSSBytes >= 0 {
			res.RSSBytesPerEdge = float64(res.RSSBytes) / float64(res.Edges)
		}
	}

	// Steady-state hot-query latency, same protocol as -scalebench.
	const reps = 4
	start = time.Now()
	for rep := 0; rep < reps; rep++ {
		for _, h := range heads {
			seq := s.IntentionsFor(h)
			for i := 0; i < seq.Len(); i++ {
				_ = seq.At(i)
			}
		}
	}
	res.IntentionsNsOp = time.Since(start).Nanoseconds() / int64(reps*len(heads))
	start = time.Now()
	for rep := 0; rep < reps; rep++ {
		for _, h := range heads {
			s.RelatedProducts(h, 10)
		}
	}
	res.RelatedNsOp = time.Since(start).Nanoseconds() / int64(reps*len(heads))

	if err := s.Close(); err != nil {
		return res, err
	}
	return res, nil
}

// runMmapBench packs the ScaledKG world into a v2 artifact and runs
// the heap and mmap loaders through the same protocol.
func runMmapBench(r *experiments.Runner, factor int, jsonOut string) error {
	r.World() // build the shared world outside every measurement
	g, err := r.ScaledKG(factor)
	if err != nil {
		return err
	}
	snap, err := g.FreezeChecked()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "cosmo-mmapbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "kg.cosmo")
	if err := kg.WriteSnapshotFile(path, snap); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	// Drop the builder state — including the runner's cached world —
	// so the loader measurements start from a quiet heap and a GC
	// cycle landing inside a timed window has nothing big to mark.
	snap, g = nil, nil
	_, _ = snap, g
	r.DropWorld()
	runtime.GC()

	heap, err := measureLoader("snapshot_heap", factor, path, fi.Size(), kg.ReadSnapshotFile)
	if err != nil {
		return err
	}
	mapped, err := measureLoader("snapshot_mmap", factor, path, fi.Size(), kg.MapSnapshotFile)
	if err != nil {
		return err
	}

	summary := mmapSummary{
		Name:              "mmap_vs_heap",
		Factor:            factor,
		Edges:             mapped.Edges,
		FirstAnswerNsHeap: heap.ColdStartNs + heap.FirstQueryNs,
		FirstAnswerNsMmap: mapped.ColdStartNs + mapped.FirstQueryNs,
	}
	if mapped.ColdStartNs > 0 {
		summary.ColdStartSpeedup = float64(heap.ColdStartNs) / float64(mapped.ColdStartNs)
	}
	if mapped.HeapBytesPerEdge > 0 {
		summary.HeapReduction = heap.HeapBytesPerEdge / mapped.HeapBytesPerEdge
	}

	for _, res := range []mmapResult{heap, mapped} {
		fmt.Printf("%-14s factor %d: %d nodes / %d edges, file %.1f MiB\n",
			res.Name, res.Factor, res.Nodes, res.Edges, float64(res.FileBytes)/(1<<20))
		fmt.Printf("  cold start %v, first query %v, heap %.1f B/edge",
			time.Duration(res.ColdStartNs), time.Duration(res.FirstQueryNs), res.HeapBytesPerEdge)
		if res.RSSBytes >= 0 {
			fmt.Printf(", rss %.1f B/edge", res.RSSBytesPerEdge)
		}
		fmt.Printf("\n  hot queries: IntentionsFor %d ns/op, RelatedProducts %d ns/op (mapped=%v)\n",
			res.IntentionsNsOp, res.RelatedNsOp, res.Mapped)
	}
	fmt.Printf("mmap vs heap: cold start %.1fx faster, heap footprint %.1fx smaller\n",
		summary.ColdStartSpeedup, summary.HeapReduction)

	if jsonOut == "" {
		return nil
	}
	out := struct {
		Loaders []mmapResult `json:"loaders"`
		Summary mmapSummary  `json:"summary"`
	}{Loaders: []mmapResult{heap, mapped}, Summary: summary}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonOut, append(data, '\n'), 0o644)
}
