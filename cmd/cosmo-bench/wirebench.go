package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"testing"

	"cosmo/internal/experiments"
	"cosmo/internal/kg"
	"cosmo/internal/serving"
	"cosmo/internal/wire"
)

// wireResult is one wire-speed measurement in the -wirebench output.
// Recall is only set for the ANN rows (Lookup vs the exact scan at the
// same depth).
type wireResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Recall      float64 `json:"recall,omitempty"`
}

// handlerIntention mirrors the response shape the /intentions handler
// encoded through the stdlib before the hand-rolled encoders.
type handlerIntention struct {
	Relation  string  `json:"relation"`
	Intention string  `json:"intention"`
	Plausible float64 `json:"plausible"`
	Typical   float64 `json:"typical"`
	Support   int     `json:"support"`
}

// runWireBench measures the serving wire path on a scaled graph: the
// stdlib encoders the handlers used to call, the pooled hand-rolled
// replacements, the batched lookup path, and ANN vs exact similarity
// retrieval. Results go to stdout and, with -json, to jsonOut (CI
// archives this as BENCH_8.json).
func runWireBench(r *experiments.Runner, jsonOut string) error {
	g, err := r.ScaledKG(3)
	if err != nil {
		return err
	}
	snap, err := g.FreezeChecked()
	if err != nil {
		return err
	}

	// A head with both intentions and related products keeps every
	// benchmark on a non-trivial path.
	var head string
	for _, n := range snap.Nodes() {
		if n.Type == kg.NodeProduct && snap.IntentionsFor(n.ID).Len() > 0 {
			head = n.ID
			break
		}
	}
	if head == "" {
		return fmt.Errorf("cosmo-bench: scaled graph has no product with intentions")
	}

	d := serving.NewDeployment(serving.DeployConfig{DailyCacheCap: 1024},
		serving.ResponderFunc(func(q string) serving.Feature {
			return serving.Feature{Query: q, Intents: []string{"used for " + q}}
		}))
	d.SetKG(snap)
	feature := serving.Feature{
		Query:       "camping",
		Intents:     []string{"used for camping trips", "bench"},
		Relations:   []string{"USED_FOR_FUNC"},
		SubCategory: "outdoor",
		Version:     2,
	}

	// The batched path: 64 KG lookups per request, reusing one body and
	// one pooled destination, the way the /batch handler drives it.
	var batchBody []byte
	batchBody = append(batchBody, '[')
	for i := 0; i < 64; i++ {
		if i > 0 {
			batchBody = append(batchBody, ',')
		}
		if i%2 == 0 {
			batchBody = append(batchBody, `{"op":"intentions","id":`...)
		} else {
			batchBody = append(batchBody, `{"op":"related","id":`...)
		}
		batchBody = wire.AppendString(batchBody, head)
		batchBody = append(batchBody, `,"k":10}`...)
	}
	batchBody = append(batchBody, ']')

	ix := kg.BuildSimilarityIndex(snap, kg.SimilarityConfig{Seed: 1})
	var queries []string
	for _, n := range snap.Nodes() {
		if n.Type == kg.NodeIntention && n.Label != "" {
			queries = append(queries, n.Label)
			if len(queries) == 256 {
				break
			}
		}
	}
	if len(queries) == 0 {
		return fmt.Errorf("cosmo-bench: scaled graph has no intention labels to query")
	}
	recall := ix.RecallAt(queries, 10)

	bench := func(name string, fn func(b *testing.B)) wireResult {
		res := testing.Benchmark(fn)
		return wireResult{
			Name:        name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
	}
	var sink []byte
	results := []wireResult{
		bench("encode_intent_stdlib", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				sink, err = json.Marshal(feature)
				if err != nil {
					b.Fatal(err)
				}
			}
		}),
		bench("encode_intent_wire", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf := wire.Get()
				buf.B = serving.AppendFeatureJSON(buf.B[:0], &feature)
				sink = buf.B
				wire.Put(buf)
			}
		}),
		bench("encode_intentions_stdlib", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// The legacy handler built the slice and wrapper map per
				// request before encoding; the cost being replaced
				// includes that materialization.
				seq := snap.IntentionsFor(head)
				n := seq.Len()
				if n > 10 {
					n = 10
				}
				out := make([]handlerIntention, n)
				for j := 0; j < n; j++ {
					e := seq.At(j)
					tail, _ := snap.Node(e.Tail)
					out[j] = handlerIntention{
						Relation:  string(e.Relation),
						Intention: tail.Label,
						Plausible: e.PlausibleScore,
						Typical:   e.TypicalScore,
						Support:   e.Support,
					}
				}
				var err error
				sink, err = json.Marshal(map[string]any{"id": head, "intentions": out})
				if err != nil {
					b.Fatal(err)
				}
			}
		}),
		bench("encode_intentions_wire", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf := wire.Get()
				buf.B = serving.AppendIntentionsJSON(buf.B[:0], snap, head, 10)
				sink = buf.B
				wire.Put(buf)
			}
		}),
		bench("encode_related_stdlib", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				sink, err = json.Marshal(map[string]any{"id": head, "related": snap.RelatedProducts(head, 10)})
				if err != nil {
					b.Fatal(err)
				}
			}
		}),
		bench("encode_related_wire", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf := wire.Get()
				buf.B = serving.AppendRelatedJSON(buf.B[:0], snap, head, 10)
				sink = buf.B
				wire.Put(buf)
			}
		}),
		bench("batch64_wire", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf := wire.Get()
				var status int
				buf.B, status = d.AppendBatch(buf.B[:0], batchBody)
				if status != 200 {
					b.Fatalf("batch status %d", status)
				}
				sink = buf.B
				wire.Put(buf)
			}
		}),
	}
	var matches []kg.SimilarMatch
	annRow := bench("similar_ann", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matches = ix.Lookup(queries[i%len(queries)], 10)
		}
	})
	annRow.Recall = recall
	exactRow := bench("similar_exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matches = ix.Exact(queries[i%len(queries)], 10)
		}
	})
	exactRow.Recall = 1
	results = append(results, annRow, exactRow)
	_, _ = sink, matches

	for _, res := range results {
		if res.Recall > 0 {
			fmt.Printf("%-26s %10d ns/op %8d allocs/op %10d B/op  recall@10 %.4f\n",
				res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.Recall)
		} else {
			fmt.Printf("%-26s %10d ns/op %8d allocs/op %10d B/op\n",
				res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		}
	}
	if jsonOut == "" {
		return nil
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s (%d wire benchmarks)", jsonOut, len(results))
	return nil
}
