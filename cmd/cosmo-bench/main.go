// Command cosmo-bench regenerates the tables and figures of the paper's
// evaluation section, printing measured values next to the paper's
// reported values.
//
// Usage:
//
//	cosmo-bench -list
//	cosmo-bench -exp table6
//	cosmo-bench -all [-scale 4]
//	cosmo-bench -exp serving -json bench.json
//	cosmo-bench -scalebench 1,10,100 -json BENCH_6.json
//	cosmo-bench -wirebench -json BENCH_8.json
//
// With -json, each experiment run is also measured (wall time and heap
// allocations around the run, with the shared pipeline world built
// before the clock starts) and the results are written to the given
// path as a JSON array of {name, ns_per_op, allocs_per_op, workers},
// one element per experiment, so CI can archive the perf trajectory.
//
// With -scalebench, the snapshot-persistence scale harness runs
// instead: for each factor the Stage 8 expansion harness
// (experiments.ScaledKG) grows the world's KG to ≥ factor× its edge
// count, and the persistence pipeline is measured end to end — Freeze
// time, binary pack time and size, O(read) load time, resident heap
// bytes per edge, and hot-query latency on the loaded snapshot. The
// records land in -json so CI tracks the persistence trajectory as the
// graph approaches paper scale.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cosmo/internal/experiments"
	"cosmo/internal/kg"
)

// benchResult is one experiment's measurement in the -json output. An
// "op" is one full experiment run.
type benchResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	Workers     int    `json:"workers"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-bench: ")

	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Int("scale", 4, "workload scale divisor (1 = largest laptop-scale run)")
	workers := flag.Int("workers", 0, "worker-pool size for the pipeline's parallel stages (0 = GOMAXPROCS); never changes results")
	jsonOut := flag.String("json", "", "write per-experiment timing/allocation measurements to this path")
	scaleBench := flag.String("scalebench", "", "comma-separated KG scale factors (e.g. 1,10,100): run the snapshot persistence harness instead of experiments")
	wireBench := flag.Bool("wirebench", false, "run the serving wire benchmarks (stdlib vs pooled encoders, batch, ANN) instead of experiments")
	mmapBench := flag.Int("mmapbench", 0, "KG scale factor (e.g. 100): compare heap ReadSnapshot vs zero-copy MapSnapshot cold start and footprint instead of experiments")
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	r := experiments.NewRunner(os.Stdout, *scale)
	r.Workers = *workers

	if *scaleBench != "" {
		if err := runScaleBench(r, *scaleBench, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *wireBench {
		if err := runWireBench(r, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *mmapBench > 0 {
		if err := runMmapBench(r, *mmapBench, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	var names []string
	switch {
	case *all:
		names = experiments.Names()
	case *exp != "":
		names = []string{*exp}
	default:
		log.Fatal("specify -exp <name>, -all, or -list")
	}

	if *jsonOut == "" {
		for _, name := range names {
			if err := r.Run(name); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
		return
	}

	// Measured mode: build the shared world (and its frozen KG snapshot)
	// before the clock starts so measurements cover the experiments
	// themselves, not the one-time pipeline run.
	r.World()
	resolvedWorkers := *workers
	if resolvedWorkers <= 0 {
		resolvedWorkers = runtime.GOMAXPROCS(0)
	}
	results := make([]benchResult, 0, len(names))
	for _, name := range names {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := r.Run(name); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		fmt.Println()
		results = append(results, benchResult{
			Name:        name,
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: after.Mallocs - before.Mallocs,
			Workers:     resolvedWorkers,
		})
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d experiments)", *jsonOut, len(results))
}

// scaleResult is one factor's measurement in the -scalebench output:
// the full persistence pipeline (freeze → pack → load) plus hot-query
// latency on the loaded snapshot.
type scaleResult struct {
	Name             string  `json:"name"`
	Factor           int     `json:"factor"`
	Nodes            int     `json:"nodes"`
	Edges            int     `json:"edges"`
	FreezeNs         int64   `json:"freeze_ns"`
	PackNs           int64   `json:"pack_ns"`
	LoadNs           int64   `json:"load_ns"`
	SnapshotBytes    int     `json:"snapshot_bytes"`
	BytesPerEdge     float64 `json:"bytes_per_edge"`
	HeapBytesPerEdge float64 `json:"heap_bytes_per_edge"`
	IntentionsNsOp   int64   `json:"intentions_ns_per_op"`
	RelatedNsOp      int64   `json:"related_ns_per_op"`
	Workers          int     `json:"workers"`
}

// runScaleBench drives the snapshot persistence harness: build a
// scaled KG, freeze it, pack it to the binary format, load it back in
// O(read), and measure every leg plus query latency on the result.
func runScaleBench(r *experiments.Runner, factors, jsonOut string) error {
	var fs []int
	for _, part := range strings.Split(factors, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || f < 1 {
			return fmt.Errorf("cosmo-bench: bad scale factor %q", part)
		}
		fs = append(fs, f)
	}
	r.World() // build the shared world outside every measurement
	results := make([]scaleResult, 0, len(fs))
	for _, factor := range fs {
		g, err := r.ScaledKG(factor)
		if err != nil {
			return err
		}

		start := time.Now()
		snap, err := g.FreezeChecked()
		if err != nil {
			return err
		}
		freezeNs := time.Since(start).Nanoseconds()

		var buf bytes.Buffer
		start = time.Now()
		if err := snap.WriteSnapshot(&buf); err != nil {
			return err
		}
		packNs := time.Since(start).Nanoseconds()

		// Load cost and resident footprint: GC fences isolate the heap
		// delta attributable to the loaded snapshot.
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start = time.Now()
		loaded, err := kg.ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		loadNs := time.Since(start).Nanoseconds()
		runtime.GC()
		runtime.ReadMemStats(&after)
		heapDelta := float64(0)
		if after.HeapAlloc > before.HeapAlloc {
			heapDelta = float64(after.HeapAlloc - before.HeapAlloc)
		}

		if loaded.NumEdges() != snap.NumEdges() || loaded.NumNodes() != snap.NumNodes() {
			return fmt.Errorf("cosmo-bench: round trip mismatch at factor %d: %d/%d nodes, %d/%d edges",
				factor, loaded.NumNodes(), snap.NumNodes(), loaded.NumEdges(), snap.NumEdges())
		}

		// Hot-query latency over a deterministic sample of product heads.
		var heads []string
		for _, n := range loaded.Nodes() {
			if n.Type == kg.NodeProduct {
				heads = append(heads, n.ID)
				if len(heads) == 512 {
					break
				}
			}
		}
		var intentionsNs, relatedNs int64
		if len(heads) > 0 {
			const reps = 4
			start = time.Now()
			for rep := 0; rep < reps; rep++ {
				for _, h := range heads {
					seq := loaded.IntentionsFor(h)
					for i := 0; i < seq.Len(); i++ {
						_ = seq.At(i)
					}
				}
			}
			intentionsNs = time.Since(start).Nanoseconds() / int64(reps*len(heads))
			start = time.Now()
			for rep := 0; rep < reps; rep++ {
				for _, h := range heads {
					loaded.RelatedProducts(h, 10)
				}
			}
			relatedNs = time.Since(start).Nanoseconds() / int64(reps*len(heads))
		}

		edges := loaded.NumEdges()
		res := scaleResult{
			Name:          fmt.Sprintf("snapshot_scale_%dx", factor),
			Factor:        factor,
			Nodes:         loaded.NumNodes(),
			Edges:         edges,
			FreezeNs:      freezeNs,
			PackNs:        packNs,
			LoadNs:        loadNs,
			SnapshotBytes: buf.Len(),
			Workers:       runtime.GOMAXPROCS(0),
		}
		if edges > 0 {
			res.BytesPerEdge = float64(buf.Len()) / float64(edges)
			res.HeapBytesPerEdge = heapDelta / float64(edges)
		}
		res.IntentionsNsOp = intentionsNs
		res.RelatedNsOp = relatedNs
		results = append(results, res)
		fmt.Printf("%-20s %9d edges  freeze %8.2fms  pack %8.2fms  load %8.2fms  %6.1f B/edge (file) %6.1f B/edge (heap)  intentions %6dns  related %8dns\n",
			res.Name, edges, float64(freezeNs)/1e6, float64(packNs)/1e6, float64(loadNs)/1e6,
			res.BytesPerEdge, res.HeapBytesPerEdge, intentionsNs, relatedNs)
		runtime.KeepAlive(loaded)
	}
	if jsonOut == "" {
		return nil
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s (%d scale points)", jsonOut, len(results))
	return nil
}
