// Command cosmo-bench regenerates the tables and figures of the paper's
// evaluation section, printing measured values next to the paper's
// reported values.
//
// Usage:
//
//	cosmo-bench -list
//	cosmo-bench -exp table6
//	cosmo-bench -all [-scale 4]
//	cosmo-bench -exp serving -json bench.json
//
// With -json, each experiment run is also measured (wall time and heap
// allocations around the run, with the shared pipeline world built
// before the clock starts) and the results are written to the given
// path as a JSON array of {name, ns_per_op, allocs_per_op, workers},
// one element per experiment, so CI can archive the perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"cosmo/internal/experiments"
)

// benchResult is one experiment's measurement in the -json output. An
// "op" is one full experiment run.
type benchResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	Workers     int    `json:"workers"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-bench: ")

	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Int("scale", 4, "workload scale divisor (1 = largest laptop-scale run)")
	workers := flag.Int("workers", 0, "worker-pool size for the pipeline's parallel stages (0 = GOMAXPROCS); never changes results")
	jsonOut := flag.String("json", "", "write per-experiment timing/allocation measurements to this path")
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	r := experiments.NewRunner(os.Stdout, *scale)
	r.Workers = *workers

	var names []string
	switch {
	case *all:
		names = experiments.Names()
	case *exp != "":
		names = []string{*exp}
	default:
		log.Fatal("specify -exp <name>, -all, or -list")
	}

	if *jsonOut == "" {
		for _, name := range names {
			if err := r.Run(name); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
		return
	}

	// Measured mode: build the shared world (and its frozen KG snapshot)
	// before the clock starts so measurements cover the experiments
	// themselves, not the one-time pipeline run.
	r.World()
	resolvedWorkers := *workers
	if resolvedWorkers <= 0 {
		resolvedWorkers = runtime.GOMAXPROCS(0)
	}
	results := make([]benchResult, 0, len(names))
	for _, name := range names {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := r.Run(name); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		fmt.Println()
		results = append(results, benchResult{
			Name:        name,
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: after.Mallocs - before.Mallocs,
			Workers:     resolvedWorkers,
		})
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d experiments)", *jsonOut, len(results))
}
