// Command cosmo-bench regenerates the tables and figures of the paper's
// evaluation section, printing measured values next to the paper's
// reported values.
//
// Usage:
//
//	cosmo-bench -list
//	cosmo-bench -exp table6
//	cosmo-bench -all [-scale 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cosmo/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-bench: ")

	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Int("scale", 4, "workload scale divisor (1 = largest laptop-scale run)")
	workers := flag.Int("workers", 0, "worker-pool size for the pipeline's parallel stages (0 = GOMAXPROCS); never changes results")
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	r := experiments.NewRunner(os.Stdout, *scale)
	r.Workers = *workers
	switch {
	case *all:
		if err := r.RunAll(); err != nil {
			log.Fatal(err)
		}
	case *exp != "":
		if err := r.Run(*exp); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("specify -exp <name>, -all, or -list")
	}
}
