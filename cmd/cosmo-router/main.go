// Command cosmo-router fronts N cosmo-serve nodes with the distributed
// serving tier (internal/cluster): consistent-hash routing over the
// query key with virtual nodes, a configurable replication factor,
// hedged reads (a second replica is tried after a latency-derived
// delay; first success wins and cancels the loser), per-node circuit
// breakers fed by every attempt, and active /readyz polling. Nodes that
// are down, draining (cosmo-serve -drain-grace) or breaker-open leave
// replica sets deterministically: each of their keys shifts to its next
// replica on the ring, and recovered nodes rejoin via half-open probes.
//
// Usage:
//
//	cosmo-serve -addr :8081 & cosmo-serve -addr :8082 & cosmo-serve -addr :8083 &
//	cosmo-router -addr :7070 -nodes http://localhost:8081,http://localhost:8082,http://localhost:8083 \
//	             [-replication 2] [-vnodes 128] [-attempt-timeout 2s]
//	             [-hedge-quantile 0.99] [-hedge-min 1ms] [-hedge-max 250ms]
//	             [-breaker-threshold 5] [-breaker-cooldown 2s] [-breaker-probes 1]
//	             [-probe-interval 1s] [-probe-timeout 500ms]
//
// Endpoints: GET /intent?q=..., GET /intentions?id=..., GET /related?id=...,
// GET /similar?q=..., GET /kg, GET /metrics (per-node route / hedge /
// failover / exclusion counters and the hedge-win ratio), GET /healthz,
// and GET /readyz — which answers 503 only when zero nodes are
// eligible.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cosmo/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-router: ")

	addr := flag.String("addr", ":7070", "HTTP listen address")
	nodeList := flag.String("nodes", "", "comma-separated cosmo-serve base URLs (required), e.g. http://host1:8080,http://host2:8080")
	replication := flag.Int("replication", 2, "replica-set size per key (1 disables hedging)")
	vnodes := flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual points per node on the consistent-hash ring")
	attemptTimeout := flag.Duration("attempt-timeout", 2*time.Second, "per-node attempt timeout")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.99, "per-node latency quantile the hedge delay derives from")
	hedgeMin := flag.Duration("hedge-min", time.Millisecond, "hedge delay lower clamp")
	hedgeMax := flag.Duration("hedge-max", 250*time.Millisecond, "hedge delay upper clamp (also the cold-start delay)")
	hedgeSamples := flag.Int64("hedge-samples", 32, "successful attempts a node needs before it informs the hedge delay")
	brkThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that trip a node's breaker")
	brkCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "how long a tripped node is excluded before a half-open probe")
	brkProbes := flag.Int("breaker-probes", 1, "probe successes needed for a tripped node to rejoin")
	probeInterval := flag.Duration("probe-interval", time.Second, "active /readyz polling interval")
	probeTimeout := flag.Duration("probe-timeout", 500*time.Millisecond, "per-node /readyz probe timeout")
	flag.Parse()

	bases := strings.Split(*nodeList, ",")
	specs := make([]cluster.NodeSpec, 0, len(bases))
	client := &http.Client{} // per-attempt deadlines come from the router's contexts
	for _, b := range bases {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		specs = append(specs, cluster.NodeSpec{
			Name:    b,
			Backend: cluster.NewHTTPBackend(b, client),
		})
	}
	if len(specs) == 0 {
		log.Fatal("-nodes is required: pass a comma-separated list of cosmo-serve base URLs")
	}

	router, err := cluster.New(specs, cluster.Config{
		Replication:      *replication,
		VirtualNodes:     *vnodes,
		AttemptTimeout:   *attemptTimeout,
		HedgeQuantile:    *hedgeQuantile,
		HedgeMin:         *hedgeMin,
		HedgeMax:         *hedgeMax,
		MinHedgeSamples:  *hedgeSamples,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		BreakerProbes:    *brkProbes,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Probe once before serving so /readyz reflects real node state from
	// the first request, then keep polling in the background.
	router.CheckHealth(ctx)
	healthDone := router.StartHealthLoop(ctx)
	log.Printf("routing over %d nodes (replication %d, %d vnodes, %d eligible now)",
		router.NumNodes(), *replication, *vnodes, router.EligibleNodes())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           cluster.NewHTTPHandler(router),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() {
		<-ctx.Done()
		log.Print("shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-healthDone
	log.Print("bye")
}
