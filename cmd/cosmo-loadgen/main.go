// Command cosmo-loadgen drives a running cosmo-serve instance with
// Zipf-like query traffic and reports throughput, hit behaviour and
// latency — the client side of the Figure 5 serving evaluation. It
// waits for the server's /readyz before sending traffic, and with
// -fault-rate it aborts a seeded-deterministic fraction of requests
// mid-flight (faults.Sequence), exercising the server's handling of
// disappearing clients. After the run it scrapes /stats for the
// server-side view (hit rate, queue depth, bounded-queue drops, batch
// requeues and breaker state).
//
// With -batch N every request is a POST /batch carrying N intent
// lookups, exercising the server's pooled batch path; latencies are
// then per round trip while the served/queued counters stay per lookup.
// Around every run the generator also scrapes /metrics for
// cosmo_go_mallocs_total and reports the server's heap allocations per
// request — the observable half of the zero-alloc encoding contract.
//
// With -cluster the target is a cosmo-router: after the run the
// generator scrapes the router's /metrics instead of /stats and reports
// end-to-end routed latency plus per-node routing, hedging, failover
// and breaker statistics.
//
// Usage:
//
//	cosmo-serve -addr :8080 &
//	cosmo-loadgen -target http://localhost:8080 -requests 5000 -workers 8 [-batch 32] [-fault-rate 0.1 -fault-seed 1]
//	cosmo-loadgen -target http://localhost:7070 -cluster -requests 5000
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cosmo/internal/faults"
)

// queryPool is a representative broad-intent vocabulary; cosmo-serve
// answers any query, warming its cache as the load generator runs.
var queryPool = []string{
	"camping", "running", "walking the dog", "winter boots", "espresso",
	"wedding", "hiking", "baby monitor", "gaming headset", "yoga",
	"fishing", "picnic", "tennis", "sewing", "painting", "travel",
	"smart watch", "air mattress", "dog leash", "notebook",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-loadgen: ")

	target := flag.String("target", "http://localhost:8080", "cosmo-serve base URL")
	requests := flag.Int("requests", 2000, "total requests to send")
	workers := flag.Int("workers", 4, "concurrent workers")
	seed := flag.Int64("seed", 1, "traffic seed")
	readyWait := flag.Duration("ready-wait", 30*time.Second, "how long to wait for the server's /readyz")
	faultRate := flag.Float64("fault-rate", 0, "client-side abort rate [0,1] (cancel requests mid-flight)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic abort sequence")
	batch := flag.Int("batch", 0, "intent lookups per request: 0 sends GET /intent, N>0 sends POST /batch with N items")
	clusterMode := flag.Bool("cluster", false, "treat the target as a cosmo-router: after the run, scrape its /metrics for per-node routing, hedging and latency stats instead of the single-node /stats view")
	flag.Parse()
	if *workers < 1 {
		*workers = 1
	}
	if *requests < 1 {
		*requests = 1
	}
	if *batch < 0 {
		*batch = 0
	}

	if err := waitReady(*target, *readyWait); err != nil {
		log.Fatal(err)
	}

	var mallocsBefore uint64
	var mallocsBeforeErr error
	if !*clusterMode { // the router's /metrics has no malloc counters
		mallocsBefore, mallocsBeforeErr = scrapeMallocs(*target)
	}

	aborts := faults.NewSequence(*faultSeed, *faultRate)
	var served, queued, failed, aborted atomic.Int64
	// Every request gets a latency slot: worker w sends count(w)
	// requests starting at offset(w), so the remainder when requests is
	// not divisible by workers is still sent and no zero-valued tail
	// skews the percentiles.
	latencies := make([]float64, *requests)
	sent := make([]bool, *requests)
	count := func(w int) int {
		n := *requests / *workers
		if w < *requests%*workers {
			n++
		}
		return n
	}
	var wg sync.WaitGroup
	start := time.Now()
	offset := 0
	for w := 0; w < *workers; w++ {
		n := count(w)
		wg.Add(1)
		go func(w, offset, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; i < n; i++ {
				// Client-side chaos: a seeded fraction of requests is
				// cancelled mid-flight, like a user abandoning a page.
				rctx, rcancel := context.WithCancel(context.Background())
				abort := aborts.Next()
				if abort {
					rcancel()
				}
				var req *http.Request
				var err error
				if *batch > 0 {
					req, err = http.NewRequestWithContext(rctx, http.MethodPost,
						*target+"/batch", bytes.NewReader(batchBody(rng, *batch)))
					if err == nil {
						req.Header.Set("Content-Type", "application/json")
					}
				} else {
					// Zipf-ish skew toward the head of the pool.
					q := queryPool[int(rng.Float64()*rng.Float64()*float64(len(queryPool)))]
					req, err = http.NewRequestWithContext(rctx, http.MethodGet,
						*target+"/intent?q="+url.QueryEscape(q), nil)
				}
				if err != nil {
					rcancel()
					failed.Add(1)
					continue
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				dt := float64(time.Since(t0).Microseconds()) / 1000.0
				rcancel()
				if err != nil {
					if abort {
						aborted.Add(1)
					} else {
						failed.Add(1)
					}
					continue
				}
				if *batch > 0 {
					body, readErr := io.ReadAll(resp.Body)
					resp.Body.Close() //cosmo:lint-ignore dropped-error best-effort close in the load generator; failures surface as request errors
					if readErr != nil || resp.StatusCode != http.StatusOK {
						failed.Add(int64(*batch))
					} else {
						s, q := countBatchItems(body)
						served.Add(s)
						queued.Add(q)
						failed.Add(int64(*batch) - s - q)
					}
				} else {
					//cosmo:lint-ignore dropped-error best-effort body drain so the connection is reused; latency was already recorded
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close() //cosmo:lint-ignore dropped-error best-effort close in the load generator; failures surface as request errors
					switch resp.StatusCode {
					case http.StatusOK:
						served.Add(1)
					case http.StatusAccepted:
						queued.Add(1)
					default:
						failed.Add(1)
					}
				}
				latencies[offset+i] = dt
				sent[offset+i] = true
			}
		}(w, offset, n)
		offset += n
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Drop slots whose request errored before a latency was measured.
	ok := latencies[:0]
	for i, l := range latencies {
		if sent[i] {
			ok = append(ok, l)
		}
	}
	latencies = ok
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	total := served.Load() + queued.Load() + failed.Load() + aborted.Load()
	if *batch > 0 {
		fmt.Printf("sent %d batch requests x %d lookups in %.1fs (%.0f lookups/s, %d workers)\n",
			*requests, *batch, elapsed.Seconds(), float64(total)/elapsed.Seconds(), *workers)
	} else {
		fmt.Printf("sent %d requests in %.1fs (%.0f rps, %d workers)\n",
			total, elapsed.Seconds(), float64(total)/elapsed.Seconds(), *workers)
	}
	fmt.Printf("served from cache: %d (%.1f%%), queued for batch: %d, failed: %d, aborted: %d\n",
		served.Load(), 100*float64(served.Load())/float64(total), queued.Load(), failed.Load(), aborted.Load())
	fmt.Printf("client latency: p50=%.1fms p99=%.1fms p999=%.1fms\n", pct(0.50), pct(0.99), pct(0.999))

	if *clusterMode {
		reportCluster(*target)
		return
	}

	// Server-side allocation cost: the delta in cumulative heap mallocs
	// across the run, per logical lookup. Background work (batch worker,
	// refresh ticks) is included, so read this as an upper bound. A
	// failed scrape is reported as n/a with its reason — never as a
	// silent zero.
	if total > 0 {
		mallocsAfter, mallocsAfterErr := scrapeMallocs(*target)
		switch {
		case mallocsBeforeErr != nil:
			fmt.Printf("server: heap allocs per lookup: n/a (pre-run scrape failed: %v)\n", mallocsBeforeErr)
		case mallocsAfterErr != nil:
			fmt.Printf("server: heap allocs per lookup: n/a (post-run scrape failed: %v)\n", mallocsAfterErr)
		default:
			fmt.Printf("server: %.1f heap allocs per lookup (%d mallocs over %d lookups)\n",
				float64(mallocsAfter-mallocsBefore)/float64(total), mallocsAfter-mallocsBefore, total)
		}
	}

	// Server-side view: hit rate, queue depth, bounded-queue drops, and
	// the fault-tolerance counters (requeues, stale serves, breaker).
	resp, err := http.Get(*target + "/stats")
	if err != nil {
		log.Printf("stats scrape failed: %v", err)
		return
	}
	defer resp.Body.Close()
	var stats struct {
		HitRate float64 `json:"hit_rate"`
		Cache   struct {
			BatchQueued  int
			BatchDropped int
		} `json:"cache"`
		Batch struct {
			Requeued       uint64
			RequeueDropped uint64
			StaleServed    uint64
		} `json:"batch"`
		BreakerState string `json:"breaker_state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Printf("stats decode failed: %v", err)
		return
	}
	fmt.Printf("server: hit rate %.1f%%, batch queue depth %d, queue dropped %d\n",
		stats.HitRate*100, stats.Cache.BatchQueued, stats.Cache.BatchDropped)
	fmt.Printf("server: requeued %d, requeue-dropped %d, stale served %d",
		stats.Batch.Requeued, stats.Batch.RequeueDropped, stats.Batch.StaleServed)
	if stats.BreakerState != "" {
		fmt.Printf(", breaker %s", stats.BreakerState)
	}
	fmt.Println()
}

// batchBody builds a POST /batch payload of n intent lookups drawn
// from the query pool with the same Zipf-ish skew as single mode.
func batchBody(rng *rand.Rand, n int) []byte {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		q := queryPool[int(rng.Float64()*rng.Float64()*float64(len(queryPool)))]
		fmt.Fprintf(&buf, `{"op":"intent","q":%q}`, q)
	}
	buf.WriteByte(']')
	return buf.Bytes()
}

// countBatchItems classifies a /batch response's entries: an entry
// with "status":"queued" was queued for batch processing, any other
// non-error entry was served from the cache tiers.
func countBatchItems(body []byte) (served, queued int64) {
	var items []json.RawMessage
	if err := json.Unmarshal(body, &items); err != nil {
		return 0, 0
	}
	for _, it := range items {
		switch {
		case bytes.Contains(it, []byte(`"status":"queued"`)):
			queued++
		case bytes.HasPrefix(it, []byte(`{"error":`)):
			// counts as failed via the caller's remainder arithmetic
		default:
			served++
		}
	}
	return served, queued
}

// scrapeMallocs reads cosmo_go_mallocs_total from the server's
// /metrics endpoint. Every failure mode — transport, non-200 status,
// read, parse, missing metric — is a distinct error so the caller can
// report why the allocs column is n/a instead of printing a silent
// zero.
func scrapeMallocs(target string) (uint64, error) {
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		return 0, fmt.Errorf("metrics scrape: %w", err)
	}
	defer resp.Body.Close() //cosmo:lint-ignore dropped-error best-effort close after the body was read; failures surface on the read
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("metrics read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("metrics scrape: %s/metrics answered %d", target, resp.StatusCode)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, "cosmo_go_mallocs_total "); ok {
			v, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("metrics parse: cosmo_go_mallocs_total: %w", err)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("metrics scrape: cosmo_go_mallocs_total missing from %s/metrics", target)
}

// reportCluster scrapes a cosmo-router's /metrics and prints the
// cluster-mode report: router-level counters, hedge statistics, the
// end-to-end routed latency quantiles, and one line per node.
func reportCluster(target string) {
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		log.Printf("router metrics scrape failed: %v", err)
		return
	}
	defer resp.Body.Close() //cosmo:lint-ignore dropped-error best-effort close after the body was read; failures surface on the read
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Printf("router metrics read failed: %v", err)
		return
	}
	if resp.StatusCode != http.StatusOK {
		log.Printf("router metrics scrape: %s/metrics answered %d", target, resp.StatusCode)
		return
	}

	router := map[string]float64{}           // unlabeled cosmo_router_*
	routerQ := map[string]float64{}          // cosmo_router_latency_ms by quantile
	nodes := map[string]map[string]float64{} // node -> metric -> value (quantile-labeled keyed as name@q)
	var nodeOrder []string
	for _, line := range strings.Split(string(body), "\n") {
		name, labels, value, ok := parseMetricLine(line)
		if !ok {
			continue
		}
		if node := labels["node"]; node != "" {
			m := nodes[node]
			if m == nil {
				m = map[string]float64{}
				nodes[node] = m
				nodeOrder = append(nodeOrder, node)
			}
			key := name
			if q := labels["quantile"]; q != "" {
				key = name + "@" + q
			}
			m[key] = value
			continue
		}
		if q := labels["quantile"]; q != "" {
			routerQ[name+"@"+q] = value
			continue
		}
		router[name] = value
	}

	fmt.Printf("router: %d nodes (%d eligible), %.0f requests, %.0f errors, %.0f failovers, %.0f no-replica\n",
		int(router["cosmo_router_nodes"]), int(router["cosmo_router_eligible_nodes"]),
		router["cosmo_router_requests_total"], router["cosmo_router_errors_total"],
		router["cosmo_router_failovers_total"], router["cosmo_router_no_replica_total"])
	fmt.Printf("router: hedges %.0f, hedge wins %.0f (ratio %.2f), hedge delay %.1fms\n",
		router["cosmo_router_hedges_total"], router["cosmo_router_hedge_wins_total"],
		router["cosmo_router_hedge_win_ratio"], router["cosmo_router_hedge_delay_ms"])
	fmt.Printf("router latency: p50=%.1fms p99=%.1fms p999=%.1fms\n",
		routerQ["cosmo_router_latency_ms@0.5"],
		routerQ["cosmo_router_latency_ms@0.99"],
		routerQ["cosmo_router_latency_ms@0.999"])
	for _, n := range nodeOrder {
		m := nodes[n]
		fmt.Printf("node %s: %s, breaker %s (opens %.0f), routes %.0f, hedges %.0f (wins %.0f), failovers %.0f, exclusions %.0f, ok %.0f, fail %.0f, p50=%.1fms p99=%.1fms p999=%.1fms\n",
			n, healthName(m["cosmo_node_health"]), breakerName(m["cosmo_node_breaker_state"]),
			m["cosmo_node_breaker_opens_total"], m["cosmo_node_routes_total"],
			m["cosmo_node_hedges_total"], m["cosmo_node_hedge_wins_total"],
			m["cosmo_node_failovers_total"], m["cosmo_node_exclusions_total"],
			m["cosmo_node_successes_total"], m["cosmo_node_failures_total"],
			m["cosmo_node_latency_ms@0.5"], m["cosmo_node_latency_ms@0.99"], m["cosmo_node_latency_ms@0.999"])
	}
}

// parseMetricLine parses one Prometheus-style plaintext line of the
// shapes `name value`, `name{k="v"} value` and
// `name{k="v",k2="v2"} value`.
func parseMetricLine(line string) (name string, labels map[string]string, value float64, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", nil, 0, false
	}
	labels = map[string]string{}
	metric := line
	if open := strings.IndexByte(line, '{'); open >= 0 {
		closeIdx := strings.IndexByte(line, '}')
		if closeIdx < open {
			return "", nil, 0, false
		}
		metric = line[:open] + line[closeIdx+1:]
		for _, pair := range strings.Split(line[open+1:closeIdx], ",") {
			k, v, found := strings.Cut(pair, "=")
			if !found {
				continue
			}
			labels[strings.TrimSpace(k)] = strings.Trim(strings.TrimSpace(v), `"`)
		}
	}
	fields := strings.Fields(metric)
	if len(fields) != 2 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return "", nil, 0, false
	}
	return fields[0], labels, v, true
}

// healthName renders the cosmo_node_health enum (cluster.Health).
func healthName(v float64) string {
	switch int(v) {
	case 0:
		return "ready"
	case 1:
		return "draining"
	case 2:
		return "down"
	}
	return fmt.Sprintf("health(%d)", int(v))
}

// breakerName renders the cosmo_node_breaker_state enum
// (serving.BreakerState).
func breakerName(v float64) string {
	switch int(v) {
	case 0:
		return "closed"
	case 1:
		return "open"
	case 2:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(v))
}

// waitReady polls the server's /readyz until it reports 200, the
// timeout passes, or the server is clearly absent. cosmo-serve runs its
// whole offline pipeline before listening, so the load generator must
// not start timing requests against a warming server.
func waitReady(target string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		resp, err := client.Get(target + "/readyz")
		if err == nil {
			ready := resp.StatusCode == http.StatusOK
			//cosmo:lint-ignore dropped-error best-effort body drain so the probe connection is reused
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close() //cosmo:lint-ignore dropped-error best-effort close on a readiness probe
			if ready {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s", target, wait)
		}
		time.Sleep(250 * time.Millisecond)
	}
}
