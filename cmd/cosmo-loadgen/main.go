// Command cosmo-loadgen drives a running cosmo-serve instance with
// Zipf-like query traffic and reports throughput, hit behaviour and
// latency — the client side of the Figure 5 serving evaluation.
//
// Usage:
//
//	cosmo-serve -addr :8080 &
//	cosmo-loadgen -target http://localhost:8080 -requests 5000 -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// queryPool is a representative broad-intent vocabulary; cosmo-serve
// answers any query, warming its cache as the load generator runs.
var queryPool = []string{
	"camping", "running", "walking the dog", "winter boots", "espresso",
	"wedding", "hiking", "baby monitor", "gaming headset", "yoga",
	"fishing", "picnic", "tennis", "sewing", "painting", "travel",
	"smart watch", "air mattress", "dog leash", "notebook",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-loadgen: ")

	target := flag.String("target", "http://localhost:8080", "cosmo-serve base URL")
	requests := flag.Int("requests", 2000, "total requests to send")
	workers := flag.Int("workers", 4, "concurrent workers")
	seed := flag.Int64("seed", 1, "traffic seed")
	flag.Parse()

	var served, queued, failed atomic.Int64
	latencies := make([]float64, *requests)
	var mu sync.Mutex
	var wg sync.WaitGroup
	per := *requests / *workers
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; i < per; i++ {
				// Zipf-ish skew toward the head of the pool.
				q := queryPool[int(rng.Float64()*rng.Float64()*float64(len(queryPool)))]
				t0 := time.Now()
				resp, err := client.Get(*target + "/intent?q=" + url.QueryEscape(q))
				dt := float64(time.Since(t0).Microseconds()) / 1000.0
				if err != nil {
					failed.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
				case http.StatusAccepted:
					queued.Add(1)
				default:
					failed.Add(1)
				}
				mu.Lock()
				latencies[w*per+i] = dt
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		i := int(p * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	total := served.Load() + queued.Load() + failed.Load()
	fmt.Printf("sent %d requests in %.1fs (%.0f rps, %d workers)\n",
		total, elapsed.Seconds(), float64(total)/elapsed.Seconds(), *workers)
	fmt.Printf("served from cache: %d (%.1f%%), queued for batch: %d, failed: %d\n",
		served.Load(), 100*float64(served.Load())/float64(total), queued.Load(), failed.Load())
	fmt.Printf("client latency: p50=%.1fms p99=%.1fms\n", pct(0.50), pct(0.99))
}
