// Command cosmo-pipeline runs the COSMO offline knowledge-generation
// pipeline end to end (Figure 2 of the paper) and writes the resulting
// knowledge graph to disk.
//
// Usage:
//
//	cosmo-pipeline [-seed N] [-events N] [-budget N] [-workers N]
//	               [-out kg.gob] [-pack kg.cosmo] [-jsonl kg.jsonl] [-tsv kg.tsv]
//
// -pack freezes the finished graph once and writes the versioned binary
// snapshot (.cosmo) that cosmo-serve -snapshot and cosmo-kg load in
// O(read) — the build side of the build-once/serve-many artifact path.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cosmo/internal/core"
	"cosmo/internal/instruction"
	"cosmo/internal/kg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-pipeline: ")

	seed := flag.Int64("seed", 42, "master random seed")
	events := flag.Int("events", 20000, "behavior events per type (co-buy and search-buy)")
	budget := flag.Int("budget", 3000, "annotation budget")
	workers := flag.Int("workers", 0, "worker-pool size for the parallel stages (0 = GOMAXPROCS); never changes the output")
	out := flag.String("out", "", "write the knowledge graph (gob) to this path")
	pack := flag.String("pack", "", "write the frozen knowledge graph as a binary snapshot (.cosmo) to this path")
	jsonl := flag.String("jsonl", "", "write the knowledge graph (JSON lines) to this path")
	tsv := flag.String("tsv", "", "write the knowledge graph (TSV) to this path")
	instr := flag.String("instructions", "", "write the instruction dataset (JSON lines) to this path")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Behavior.CoBuyEvents = *events
	cfg.Behavior.SearchEvents = *events
	cfg.AnnotationBudget = *budget
	cfg.Workers = *workers
	cfg.Logf = log.Printf

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	stats := res.KG.ComputeStats()
	fmt.Printf("pipeline complete: %d nodes, %d edges, %d relations, %d domains\n",
		stats.Nodes, stats.Edges, stats.Relations, stats.Domains)
	fmt.Printf("annotation audit accuracy: %.3f\n", res.AuditAccuracy)
	fmt.Printf("teacher cost: %.0f simulated ms over %d calls\n",
		res.TeacherCost.SimulatedMs, res.TeacherCost.Calls)
	fmt.Printf("COSMO-LM: %d tails learned, %d edges from expansion\n",
		res.CosmoLM.KnownTails(), res.ExpandedEdges)

	write := func(path string, fn func(w io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close() //cosmo:lint-ignore dropped-error already on the fatal path; the write error is the root cause
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	write(*out, res.KG.WriteGob)
	if *pack != "" {
		snap, err := res.KG.FreezeChecked()
		if err != nil {
			log.Fatal(err)
		}
		if err := kg.WriteSnapshotFile(*pack, snap); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("packed %s (%d nodes, %d edges)\n", *pack, snap.NumNodes(), snap.NumEdges())
	}
	write(*jsonl, res.KG.WriteJSONL)
	write(*tsv, res.KG.WriteTSV)
	write(*instr, func(w io.Writer) error {
		return instruction.WriteJSONL(w, res.Instruction)
	})
}
