// Command cosmo-kg inspects a knowledge graph written by cosmo-pipeline.
//
// Usage:
//
//	cosmo-kg -in kg.gob stats
//	cosmo-kg -in kg.gob lookup <head-node-id>
//	cosmo-kg -in kg.gob related <product-node-id>
//	cosmo-kg -in kg.gob hierarchy [-min 2]
//	cosmo-kg -in kg.gob export -tsv out.tsv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"cosmo/internal/catalog"
	"cosmo/internal/kg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-kg: ")

	in := flag.String("in", "", "knowledge graph gob file (from cosmo-pipeline -out)")
	minSupport := flag.Int("min", 2, "hierarchy minimum edge support")
	tsv := flag.String("tsv", "", "export destination for the export command")
	flag.Parse()

	if *in == "" || flag.NArg() < 1 {
		log.Fatal("usage: cosmo-kg -in kg.gob <stats|lookup|hierarchy|export> [args]")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	g, err := kg.ReadGob(f)
	f.Close() //cosmo:lint-ignore dropped-error close of a read-only file; decode outcome is checked below
	if err != nil {
		log.Fatal(err)
	}
	// All queries go through the frozen read-optimized snapshot — the
	// same view the serving stack uses.
	snap := g.Freeze()

	switch flag.Arg(0) {
	case "stats":
		s := snap.ComputeStats()
		fmt.Printf("nodes: %d\nedges: %d\nrelations: %d\ndomains: %d\n",
			s.Nodes, s.Edges, s.Relations, s.Domains)
		for _, cat := range sortedKeys(s) {
			ds := s.PerDomain[catalog.Category(cat)]
			fmt.Printf("  %-30s co-buy=%d search-buy=%d\n", cat, ds.CoBuyEdges, ds.SearchBuyEdges)
		}
	case "lookup":
		if flag.NArg() < 2 {
			log.Fatal("lookup requires a node id (e.g. 'q:camping' or 'p:P000001')")
		}
		head := flag.Arg(1)
		seq := snap.IntentionsFor(head)
		if seq.Len() == 0 {
			fmt.Println("no intentions for", head)
			return
		}
		for i := 0; i < seq.Len(); i++ {
			e := seq.At(i)
			tail, _ := snap.Node(e.Tail)
			fmt.Printf("%-16s %-40s plausible=%.3f typical=%.3f support=%d\n",
				e.Relation, tail.Label, e.PlausibleScore, e.TypicalScore, e.Support)
		}
	case "related":
		if flag.NArg() < 2 {
			log.Fatal("related requires a product node id (e.g. 'p:P000001')")
		}
		for _, rel := range snap.RelatedProducts(flag.Arg(1), 10) {
			fmt.Printf("%-12s %-45s score=%.2f via %v\n",
				rel.ProductID, rel.Label, rel.Score, rel.Via)
		}
	case "hierarchy":
		roots := snap.BuildHierarchy(*minSupport)
		fmt.Printf("%d hierarchy roots\n", len(roots))
		n := 10
		if n > len(roots) {
			n = len(roots)
		}
		for _, root := range roots[:n] {
			fmt.Print(root.Render(2))
		}
	case "export":
		if *tsv == "" {
			log.Fatal("export requires -tsv <path>")
		}
		out, err := os.Create(*tsv)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.WriteTSV(out); err != nil {
			out.Close() //cosmo:lint-ignore dropped-error already on the fatal path; the write error is the root cause
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *tsv)
	default:
		log.Fatalf("unknown command %q", flag.Arg(0))
	}
}

func sortedKeys(s kg.Stats) []string {
	out := make([]string, 0, len(s.PerDomain))
	for cat := range s.PerDomain {
		out = append(out, string(cat))
	}
	sort.Strings(out)
	return out
}
