// Command cosmo-kg inspects and packs a knowledge graph written by
// cosmo-pipeline. It reads either format — the mutable-graph gob or a
// packed .cosmo binary snapshot (sniffed by magic) — and answers every
// query through the frozen read-optimized snapshot. A gob input pays
// one Freeze() at load; a .cosmo input loads in O(read).
//
// Usage:
//
//	cosmo-kg -in kg.gob stats
//	cosmo-kg -in kg.cosmo lookup <head-node-id>
//	cosmo-kg -in kg.cosmo related <product-node-id>
//	cosmo-kg -in kg.gob -min 2 hierarchy
//	cosmo-kg -in kg.gob -tsv out.tsv -jsonl out.jsonl export
//	cosmo-kg -in kg.gob -out kg.cosmo pack
//
// pack freezes the graph once and writes the versioned, checksummed
// binary snapshot that cosmo-serve -snapshot loads without re-indexing
// — the build-once/serve-many artifact path.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"cosmo/internal/catalog"
	"cosmo/internal/kg"
)

// loadSnapshot opens path, sniffs the format by magic, and returns the
// frozen snapshot view: .cosmo files decode directly (no Freeze), gob
// files decode into a Graph and freeze once with the capacity guards on.
func loadSnapshot(path string) (*kg.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //cosmo:lint-ignore dropped-error close of a read-only file; the decode outcome is checked

	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(8)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	if kg.IsSnapshotHeader(head) {
		return kg.ReadSnapshot(br)
	}
	g, err := kg.ReadGob(br)
	if err != nil {
		return nil, err
	}
	return g.FreezeChecked()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-kg: ")

	in := flag.String("in", "", "knowledge graph file: gob (from cosmo-pipeline -out) or packed .cosmo snapshot")
	minSupport := flag.Int("min", 2, "hierarchy minimum edge support")
	tsv := flag.String("tsv", "", "TSV destination for the export command")
	jsonl := flag.String("jsonl", "", "JSONL destination for the export command")
	out := flag.String("out", "", "snapshot destination for the pack command")
	v2 := flag.Bool("v2", true, "pack in format v2 (per-section checksums, 8-byte alignment, mmap-servable); -v2=false writes legacy v1 for pre-v2 deployments")
	flag.Parse()

	if *in == "" || flag.NArg() < 1 {
		log.Fatal("usage: cosmo-kg -in kg.{gob,cosmo} <stats|lookup|related|hierarchy|export|pack> [args]")
	}
	snap, err := loadSnapshot(*in)
	if err != nil {
		log.Fatal(err)
	}

	switch flag.Arg(0) {
	case "stats":
		s := snap.ComputeStats()
		fmt.Printf("nodes: %d\nedges: %d\nrelations: %d\ndomains: %d\n",
			s.Nodes, s.Edges, s.Relations, s.Domains)
		for _, cat := range sortedKeys(s) {
			ds := s.PerDomain[catalog.Category(cat)]
			fmt.Printf("  %-30s co-buy=%d search-buy=%d\n", cat, ds.CoBuyEdges, ds.SearchBuyEdges)
		}
	case "lookup":
		if flag.NArg() < 2 {
			log.Fatal("lookup requires a node id (e.g. 'q:camping' or 'p:P000001')")
		}
		head := flag.Arg(1)
		seq := snap.IntentionsFor(head)
		if seq.Len() == 0 {
			fmt.Println("no intentions for", head)
			return
		}
		for i := 0; i < seq.Len(); i++ {
			e := seq.At(i)
			tail, _ := snap.Node(e.Tail)
			fmt.Printf("%-16s %-40s plausible=%.3f typical=%.3f support=%d\n",
				e.Relation, tail.Label, e.PlausibleScore, e.TypicalScore, e.Support)
		}
	case "related":
		if flag.NArg() < 2 {
			log.Fatal("related requires a product node id (e.g. 'p:P000001')")
		}
		for _, rel := range snap.RelatedProducts(flag.Arg(1), 10) {
			fmt.Printf("%-12s %-45s score=%.2f via %v\n",
				rel.ProductID, rel.Label, rel.Score, rel.Via)
		}
	case "hierarchy":
		roots := snap.BuildHierarchy(*minSupport)
		fmt.Printf("%d hierarchy roots\n", len(roots))
		n := 10
		if n > len(roots) {
			n = len(roots)
		}
		for _, root := range roots[:n] {
			fmt.Print(root.Render(2))
		}
	case "export":
		if *tsv == "" && *jsonl == "" {
			log.Fatal("export requires -tsv <path> and/or -jsonl <path> (flags go before the command)")
		}
		exportTo(*tsv, snap.WriteTSV)
		exportTo(*jsonl, snap.WriteJSONL)
	case "pack":
		if *out == "" {
			log.Fatal("pack requires -out <path> (flags go before the command)")
		}
		version := uint32(2)
		if !*v2 {
			version = 1
		}
		if err := kg.WriteSnapshotFileVersion(*out, snap, version); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("packed %d nodes / %d edges into %s (format v%d)\n",
			snap.NumNodes(), snap.NumEdges(), *out, version)
	default:
		log.Fatalf("unknown command %q", flag.Arg(0))
	}
}

// exportTo writes one export format to path (no-op when path is empty),
// surfacing write and close errors.
func exportTo(path string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close() //cosmo:lint-ignore dropped-error already on the fatal path; the write error is the root cause
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}

func sortedKeys(s kg.Stats) []string {
	out := make([]string, 0, len(s.PerDomain))
	for cat := range s.PerDomain {
		out = append(out, string(cat))
	}
	sort.Strings(out)
	return out
}
