// Command cosmo-serve runs the COSMO online serving stack of Figure 5:
// it builds the world, trains COSMO-LM through the offline pipeline,
// then serves structured intent features over HTTP through the feature
// store and asynchronous two-layer cache, with a background batch
// processor and a periodic model-refresh loop.
//
// Usage:
//
//	cosmo-serve [-addr :8080] [-events N] [-refresh 24h]
//
// Endpoints: GET /intent?q=..., GET /stats, GET /healthz.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"cosmo/internal/core"
	"cosmo/internal/serving"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-serve: ")

	addr := flag.String("addr", ":8080", "HTTP listen address")
	events := flag.Int("events", 10000, "behavior events for the offline pipeline")
	refresh := flag.Duration("refresh", 24*time.Hour, "model refresh interval")
	batchEvery := flag.Duration("batch", 2*time.Second, "batch-processor interval")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Behavior.CoBuyEvents = *events
	cfg.Behavior.SearchEvents = *events
	cfg.Logf = log.Printf
	log.Print("running offline pipeline (this trains COSMO-LM)...")
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("pipeline ready: KG %d edges, COSMO-LM %d tails",
		res.KG.NumEdges(), res.CosmoLM.KnownTails())

	responder := serving.ResponderFunc(func(q string) serving.Feature {
		gens := res.CosmoLM.Generate("search query: "+q, "", "", 3)
		f := serving.Feature{Query: q}
		for _, g := range gens {
			f.Intents = append(f.Intents, g.Text)
			f.Relations = append(f.Relations, string(g.Relation))
		}
		if len(gens) > 0 {
			f.SubCategory = gens[0].Tail
			f.StrongIntent = gens[0].Score > 1.0
		}
		return f
	})

	dep := serving.NewDeployment(serving.DeployConfig{DailyCacheCap: 4096}, responder)

	// Background batch processor ("Batch Processing and Cache Update").
	go func() {
		for range time.Tick(*batchEvery) {
			if n := dep.RunBatch(256); n > 0 {
				log.Printf("batch processed %d queries", n)
			}
		}
	}()
	// Daily refresh loop ("Model Deployment" + feedback loop).
	go func() {
		for range time.Tick(*refresh) {
			log.Print("daily refresh: rotating model and caches")
			dep.DailyRefresh(responder, 2048)
		}
	}()

	log.Printf("serving on %s", *addr)
	if err := http.ListenAndServe(*addr, serving.NewHTTPHandler(dep)); err != nil {
		log.Fatal(err)
	}
}
