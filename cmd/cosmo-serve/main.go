// Command cosmo-serve runs the COSMO online serving stack of Figure 5:
// it builds the world, trains COSMO-LM through the offline pipeline,
// then serves structured intent features over HTTP through the feature
// store and asynchronous sharded two-layer cache, with a background
// batch worker and a periodic model-refresh loop. SIGINT/SIGTERM shut
// the server down gracefully: in-flight requests finish and the batch
// worker drains the whole remaining queue before exit.
//
// The responder path is fallible end to end: model calls run under
// per-attempt timeouts with bounded seeded-backoff retries behind a
// circuit breaker (serving.Resilient), failed batch queries are
// re-queued, a refresh that fails mid-rebuild aborts atomically, and
// cache misses degrade to serving prior-version features flagged stale.
// The -fault-* flags interpose a deterministic fault injector
// (internal/faults) between the resilience layer and the model for
// chaos-testing a live instance.
//
// The knowledge graph is served from an immutable frozen snapshot
// (kg.Snapshot): the request path reads it lock-free through an atomic
// pointer, and each refresh freezes a new snapshot and swaps it in
// RCU-style without pausing in-flight requests.
//
// With -snapshot, the KG is loaded from a packed binary snapshot
// (.cosmo, written by cosmo-kg pack or cosmo-pipeline -pack) in O(read)
// — no Freeze, no re-indexing — and each refresh re-reads the file and
// swaps the fresh snapshot in through the same atomic pointer, so a
// newly packed artifact goes live on the next refresh tick without a
// restart. A failed reload keeps the current snapshot serving. Adding
// -mmap memory-maps a v2 artifact instead of copying it onto the heap
// (kg.MapSnapshot): start-up touches only the string tables, queries
// validate each section lazily on first use, and a retired snapshot's
// mapping is released only once its last in-flight reader is gone — a
// hot reload never unmaps under a live request. v1 artifacts fall back
// to the copy loader with a log line.
//
// A refresh tick only reloads when the artifact actually changed:
// unchanged stat identity (mtime+size), or an unchanged v2 table
// checksum — the sealed per-section CRCs double as a content
// fingerprint — skip the reload and RCU swap entirely, counted by the
// cosmo_snapshot_reloads_total / cosmo_snapshot_reload_skipped_total
// metric pair.
//
// Usage:
//
//	cosmo-serve [-addr :8080] [-events N] [-refresh 24h] [-shards 8] [-queue-cap 4096]
//	            [-snapshot kg.cosmo] [-mmap] [-ann-tables 16] [-ann-bits 10]
//	            [-drain-grace 15s]
//	            [-fault-rate 0.2 -fault-seed 1 -fault-hang-rate 0.05 -fault-panic-rate 0.05]
//
// With -drain-grace, SIGINT/SIGTERM starts a graceful drain instead of
// an immediate shutdown: /readyz flips to 503 with a "draining" body
// (and /metrics exports cosmo_draining 1) so routers and load balancers
// take the node out of rotation, while the query endpoints keep
// answering in-flight and router-retry traffic for the grace period;
// then the server shuts down.
//
// Endpoints: GET /intent?q=..., GET /intentions?id=..., GET /related?id=...,
// GET /similar?q=..., POST /batch, GET /kg, GET /stats, GET /metrics,
// GET /healthz, GET /readyz.
//
// Alongside each snapshot, an LSH similarity index (kg.SimilarityIndex)
// is built over the intention labels and swapped in through the same
// RCU pattern; /similar answers approximate nearest-intention queries
// against it. -ann-tables and -ann-bits tune the recall/speed shape.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cosmo/internal/core"
	"cosmo/internal/faults"
	"cosmo/internal/kg"
	"cosmo/internal/serving"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-serve: ")

	addr := flag.String("addr", ":8080", "HTTP listen address")
	snapshotPath := flag.String("snapshot", "", "serve the KG from this packed binary snapshot (.cosmo), loaded in O(read) and re-read on each refresh")
	useMmap := flag.Bool("mmap", false, "memory-map the -snapshot artifact (v2) instead of copying it onto the heap; v1 artifacts fall back to the copy loader")
	events := flag.Int("events", 10000, "behavior events for the offline pipeline")
	refresh := flag.Duration("refresh", 24*time.Hour, "model refresh interval")
	batchEvery := flag.Duration("batch", 2*time.Second, "batch-worker interval")
	batchSize := flag.Int("batch-size", 256, "max queries per batch run")
	shards := flag.Int("shards", serving.DefaultCacheShards, "cache lock-stripe count")
	queueCap := flag.Int("queue-cap", serving.DefaultQueueCap, "bounded batch-queue capacity")
	callTimeout := flag.Duration("call-timeout", time.Second, "per-attempt responder timeout")
	maxRetries := flag.Int("max-retries", 2, "responder retries per call")
	faultRate := flag.Float64("fault-rate", 0, "injected responder error rate [0,1] (chaos mode)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection seed (deterministic per seed)")
	faultHangRate := flag.Float64("fault-hang-rate", 0, "injected hang rate [0,1]")
	faultPanicRate := flag.Float64("fault-panic-rate", 0, "injected panic rate [0,1]")
	faultLatencyRate := flag.Float64("fault-latency-rate", 0, "injected latency-spike rate [0,1]")
	faultLatency := flag.Duration("fault-latency", 50*time.Millisecond, "injected latency-spike duration")
	annTables := flag.Int("ann-tables", kg.DefaultSimilarityTables, "LSH hash tables for the /similar index")
	annBits := flag.Int("ann-bits", kg.DefaultSimilarityBits, "LSH signature bits per table for the /similar index")
	annSeed := flag.Int64("ann-seed", 1, "LSH hyperplane seed")
	maxBatch := flag.Int("max-batch", serving.DefaultMaxBatchItems, "max items per POST /batch request")
	drainGrace := flag.Duration("drain-grace", 0, "on SIGINT/SIGTERM, announce a drain (/readyz 503 \"draining\", cosmo_draining 1) and keep serving for this long before shutting down; 0 shuts down immediately")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Behavior.CoBuyEvents = *events
	cfg.Behavior.SearchEvents = *events
	cfg.Logf = log.Printf
	log.Print("running offline pipeline (this trains COSMO-LM)...")
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// KG source: a packed binary snapshot loads in O(read) with zero
	// re-indexing (O(string tables) under -mmap); otherwise the
	// pipeline's graph is frozen in-process.
	loadSnapshot := func(path string) (*kg.Snapshot, error) {
		if !*useMmap {
			return kg.ReadSnapshotFile(path)
		}
		s, err := kg.MapSnapshotFile(path)
		if errors.Is(err, kg.ErrSnapshotVersion) {
			log.Printf("%s is not a v2 snapshot; -mmap falls back to the copy loader (repack with cosmo-kg pack to serve zero-copy)", path)
			return kg.ReadSnapshotFile(path)
		}
		return s, err
	}
	var snap *kg.Snapshot
	var lastStamp kg.SnapshotStamp
	if *snapshotPath != "" {
		start := time.Now()
		snap, err = loadSnapshot(*snapshotPath)
		if err != nil {
			log.Fatal(err)
		}
		if lastStamp, err = kg.StampSnapshotFile(*snapshotPath); err != nil {
			log.Printf("snapshot stamp failed (every refresh tick will reload): %v", err)
		}
		how := "no Freeze"
		if snap.Mapped() {
			how = "mmap, lazy validation"
		}
		log.Printf("loaded snapshot %s in %v: %d nodes / %d edges (%s)",
			*snapshotPath, time.Since(start), snap.NumNodes(), snap.NumEdges(), how)
	} else {
		snap = res.KG.Freeze()
	}
	log.Printf("pipeline ready: frozen KG snapshot %d nodes / %d edges, COSMO-LM %d tails",
		snap.NumNodes(), snap.NumEdges(), res.CosmoLM.KnownTails())

	model := serving.ContextResponderFunc(func(ctx context.Context, q string) (serving.Feature, error) {
		if err := ctx.Err(); err != nil {
			return serving.Feature{}, err
		}
		gens := res.CosmoLM.Generate("search query: "+q, "", "", 3)
		f := serving.Feature{Query: q}
		for _, g := range gens {
			f.Intents = append(f.Intents, g.Text)
			f.Relations = append(f.Relations, string(g.Relation))
		}
		if len(gens) > 0 {
			f.SubCategory = gens[0].Tail
			f.StrongIntent = gens[0].Score > 1.0
		}
		return f, nil
	})

	// Chaos mode: interpose the deterministic fault injector between the
	// resilience layer and the model so a live instance can be driven
	// through outages reproducibly.
	inner := serving.ContextResponder(model)
	if *faultRate > 0 || *faultHangRate > 0 || *faultPanicRate > 0 || *faultLatencyRate > 0 {
		inj := faults.New(faults.Config{
			Seed:        *faultSeed,
			ErrorRate:   *faultRate,
			HangRate:    *faultHangRate,
			PanicRate:   *faultPanicRate,
			LatencyRate: *faultLatencyRate,
			Latency:     *faultLatency,
		})
		inner = faults.Wrap(inner, inj)
		log.Printf("chaos mode: injecting faults (seed %d, error %.2f, hang %.2f, panic %.2f, latency %.2f)",
			*faultSeed, *faultRate, *faultHangRate, *faultPanicRate, *faultLatencyRate)
	}
	responder := serving.NewResilient(inner, serving.ResilienceConfig{
		CallTimeout: *callTimeout,
		MaxRetries:  *maxRetries,
		Seed:        *faultSeed,
	})

	dep := serving.NewDeploymentContext(serving.DeployConfig{
		DailyCacheCap: 4096,
		CacheShards:   *shards,
		QueueCap:      *queueCap,
		MaxBatchItems: *maxBatch,
	}, responder)
	dep.SetKG(snap)
	if *snapshotPath != "" {
		dep.NoteSnapshotReload() // the initial artifact load
	}
	annCfg := kg.SimilarityConfig{Tables: *annTables, Bits: *annBits, Seed: *annSeed}
	buildANN := func(s *kg.Snapshot) {
		start := time.Now()
		ix := kg.BuildSimilarityIndex(s, annCfg)
		dep.SetSimilarity(ix)
		log.Printf("similarity index: %d intentions indexed in %v (%d tables x %d bits)",
			ix.NumIndexed(), time.Since(start), ix.Config().Tables, ix.Config().Bits)
	}
	buildANN(snap)
	dep.SetReady(true) // warmup (pipeline + KG install) is complete

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Background batch worker ("Batch Processing and Cache Update").
	workerDone := dep.StartWorker(ctx, *batchEvery, *batchSize)

	// Daily refresh loop ("Model Deployment" + feedback loop). A failed
	// refresh is atomic — the previous model, caches and KG snapshot keep
	// serving — so the error is logged and the next tick retries.
	go func() {
		ticker := time.NewTicker(*refresh)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				log.Print("daily refresh: rotating model, caches and KG snapshot")
				// Pick up a fresh snapshot — re-read the packed file (a
				// newly built artifact goes live here) or re-freeze the
				// in-process graph — and swap it in; readers on the old
				// snapshot are undisturbed. A failed reload falls back to
				// the snapshot already serving, and an unchanged artifact
				// (same stat identity, or same v2 content fingerprint
				// after e.g. an idempotent repack) skips the reload and
				// swap entirely.
				next := dep.KG()
				if *snapshotPath != "" {
					fresh := true
					if fi, err := os.Stat(*snapshotPath); err == nil &&
						fi.Size() == lastStamp.Size && fi.ModTime().Equal(lastStamp.ModTime) {
						fresh = false // cheap path: stat identity unchanged, no open
					} else if stamp, err := kg.StampSnapshotFile(*snapshotPath); err == nil &&
						stamp.SameContent(lastStamp) {
						fresh = false // rewritten but byte-identical: fingerprint unchanged
						lastStamp = stamp
					}
					if !fresh {
						dep.NoteSnapshotReloadSkipped()
						log.Print("snapshot unchanged on disk; skipping reload")
					} else if reloaded, err := loadSnapshot(*snapshotPath); err != nil {
						log.Printf("snapshot reload failed (current snapshot keeps serving): %v", err)
					} else {
						next = reloaded
						dep.NoteSnapshotReload()
						if lastStamp, err = kg.StampSnapshotFile(*snapshotPath); err != nil {
							log.Printf("snapshot stamp failed (next tick will reload): %v", err)
						}
					}
				} else {
					next = res.KG.Freeze()
				}
				if err := dep.DailyRefreshContext(ctx, responder, next, 2048); err != nil {
					log.Printf("daily refresh failed (previous model keeps serving): %v", err)
				} else {
					// Rebuild the ANN index against whatever snapshot the
					// refresh committed, keeping /similar and the KG
					// endpoints answering from the same world.
					buildANN(dep.KG())
				}
			}
		}
	}()

	// Timeouts bound every connection phase so a slow or hostile client
	// (slowloris) cannot pin a connection forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serving.NewHTTPHandler(dep),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() {
		<-ctx.Done()
		if *drainGrace > 0 {
			// Graceful drain: /readyz answers 503 "draining" so routers
			// and load balancers take this node out of rotation, while
			// the query endpoints keep answering in-flight and
			// router-retry traffic for the grace period.
			dep.BeginDrain()
			log.Printf("draining: out of rotation, serving for another %v before shutdown", *drainGrace)
			timer := time.NewTimer(*drainGrace)
			defer timer.Stop()
			<-timer.C
		} else {
			dep.SetReady(false) // /readyz flips first so load balancers drain
		}
		log.Print("shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s (%d cache shards, queue cap %d)",
		*addr, dep.Cache.NumShards(), *queueCap)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-workerDone // final batch drain completes before exit
	log.Print("bye")
}
