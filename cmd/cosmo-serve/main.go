// Command cosmo-serve runs the COSMO online serving stack of Figure 5:
// it builds the world, trains COSMO-LM through the offline pipeline,
// then serves structured intent features over HTTP through the feature
// store and asynchronous sharded two-layer cache, with a background
// batch worker and a periodic model-refresh loop. SIGINT/SIGTERM shut
// the server down gracefully: in-flight requests finish and the batch
// worker performs a final drain before exit.
//
// The knowledge graph is served from an immutable frozen snapshot
// (kg.Snapshot): the request path reads it lock-free through an atomic
// pointer, and each refresh freezes a new snapshot and swaps it in
// RCU-style without pausing in-flight requests.
//
// Usage:
//
//	cosmo-serve [-addr :8080] [-events N] [-refresh 24h] [-shards 8] [-queue-cap 4096]
//
// Endpoints: GET /intent?q=..., GET /intentions?id=..., GET /related?id=...,
// GET /kg, GET /stats, GET /metrics, GET /healthz.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"cosmo/internal/core"
	"cosmo/internal/serving"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmo-serve: ")

	addr := flag.String("addr", ":8080", "HTTP listen address")
	events := flag.Int("events", 10000, "behavior events for the offline pipeline")
	refresh := flag.Duration("refresh", 24*time.Hour, "model refresh interval")
	batchEvery := flag.Duration("batch", 2*time.Second, "batch-worker interval")
	batchSize := flag.Int("batch-size", 256, "max queries per batch run")
	shards := flag.Int("shards", serving.DefaultCacheShards, "cache lock-stripe count")
	queueCap := flag.Int("queue-cap", serving.DefaultQueueCap, "bounded batch-queue capacity")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Behavior.CoBuyEvents = *events
	cfg.Behavior.SearchEvents = *events
	cfg.Logf = log.Printf
	log.Print("running offline pipeline (this trains COSMO-LM)...")
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	snap := res.KG.Freeze()
	log.Printf("pipeline ready: frozen KG snapshot %d nodes / %d edges, COSMO-LM %d tails",
		snap.NumNodes(), snap.NumEdges(), res.CosmoLM.KnownTails())

	responder := serving.ResponderFunc(func(q string) serving.Feature {
		gens := res.CosmoLM.Generate("search query: "+q, "", "", 3)
		f := serving.Feature{Query: q}
		for _, g := range gens {
			f.Intents = append(f.Intents, g.Text)
			f.Relations = append(f.Relations, string(g.Relation))
		}
		if len(gens) > 0 {
			f.SubCategory = gens[0].Tail
			f.StrongIntent = gens[0].Score > 1.0
		}
		return f
	})

	dep := serving.NewDeployment(serving.DeployConfig{
		DailyCacheCap: 4096,
		CacheShards:   *shards,
		QueueCap:      *queueCap,
	}, responder)
	dep.SetKG(snap)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Background batch worker ("Batch Processing and Cache Update").
	workerDone := dep.StartWorker(ctx, *batchEvery, *batchSize)

	// Daily refresh loop ("Model Deployment" + feedback loop).
	go func() {
		ticker := time.NewTicker(*refresh)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				log.Print("daily refresh: rotating model, caches and KG snapshot")
				// Freeze a fresh snapshot of the (re)built graph and swap
				// it in; readers on the old snapshot are undisturbed.
				dep.DailyRefresh(responder, res.KG.Freeze(), 2048)
			}
		}
	}()

	srv := &http.Server{Addr: *addr, Handler: serving.NewHTTPHandler(dep)}
	go func() {
		<-ctx.Done()
		log.Print("shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s (%d cache shards, queue cap %d)",
		*addr, dep.Cache.NumShards(), *queueCap)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-workerDone // final batch drain completes before exit
	log.Print("bye")
}
