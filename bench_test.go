// Package cosmo's root benchmark suite regenerates every table and
// figure of the paper's evaluation (deliverable (d) of the reproduction):
// run `go test -bench=. -benchmem` to execute them all, or -bench with a
// specific name (e.g. -bench=BenchmarkRelevanceTable6). Each benchmark
// reports the same rows/series the paper reports via the experiments
// harness; see EXPERIMENTS.md for the recorded paper-vs-measured values.
package cosmo

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"cosmo/internal/experiments"
	"cosmo/internal/serving"
)

// benchScale shrinks workloads so the full suite completes in minutes.
const benchScale = 12

var (
	once   sync.Once
	runner *experiments.Runner
)

func sharedRunner() *experiments.Runner {
	once.Do(func() {
		runner = experiments.NewRunner(io.Discard, benchScale)
		runner.World() // build the pipeline world once, outside timings
	})
	return runner
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	r := sharedRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineTable1 regenerates Table 1's COSMO KG summary row.
func BenchmarkPipelineTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkRelationMiningTable2 regenerates Table 2's relation taxonomy.
func BenchmarkRelationMiningTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkPipelineTable3 regenerates Table 3's per-category statistics.
func BenchmarkPipelineTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkAnnotationTable4 regenerates Table 4's quality ratios.
func BenchmarkAnnotationTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkESCITable5 regenerates Table 5's dataset statistics.
func BenchmarkESCITable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkRelevanceTable6 regenerates Table 6's relevance comparison.
func BenchmarkRelevanceTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkRelevanceFigure7 regenerates Figure 7's per-locale series.
func BenchmarkRelevanceFigure7(b *testing.B) { benchExperiment(b, "figure7") }

// BenchmarkSessionTable7 regenerates Table 7's session statistics.
func BenchmarkSessionTable7(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkSessionTable8 regenerates Table 8's recommender comparison.
func BenchmarkSessionTable8(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkGenerationTable9 regenerates Table 9's per-category examples.
func BenchmarkGenerationTable9(b *testing.B) { benchExperiment(b, "table9") }

// BenchmarkHierarchyFigure8 regenerates Figure 8's intention hierarchy.
func BenchmarkHierarchyFigure8(b *testing.B) { benchExperiment(b, "figure8") }

// BenchmarkNavigationABTest regenerates the §4.3.2 online A/B endpoints.
func BenchmarkNavigationABTest(b *testing.B) { benchExperiment(b, "abtest") }

// BenchmarkServingFigure5 measures the Figure 5 serving stack.
func BenchmarkServingFigure5(b *testing.B) { benchExperiment(b, "serving") }

// BenchmarkGenerationLatency compares teacher vs COSMO-LM inference cost.
func BenchmarkGenerationLatency(b *testing.B) { benchExperiment(b, "latency") }

// BenchmarkAblationFilter measures per-stage filter contributions.
func BenchmarkAblationFilter(b *testing.B) { benchExperiment(b, "ablation-filter") }

// BenchmarkAblationSampling measures Eq.2 re-weighting's tail coverage.
func BenchmarkAblationSampling(b *testing.B) { benchExperiment(b, "ablation-sampling") }

// BenchmarkAblationTasks measures instruction-task-diversity effects.
func BenchmarkAblationTasks(b *testing.B) { benchExperiment(b, "ablation-tasks") }

// BenchmarkAblationCache compares one- vs two-layer cache hit rates.
func BenchmarkAblationCache(b *testing.B) { benchExperiment(b, "ablation-cache") }

// BenchmarkLimitationFlashSale measures the §3.5.3 staleness limitation.
func BenchmarkLimitationFlashSale(b *testing.B) { benchExperiment(b, "limitation-flashsale") }

// BenchmarkBaselineFolkScope compares COSMO against the FolkScope baseline.
func BenchmarkBaselineFolkScope(b *testing.B) { benchExperiment(b, "baseline-folkscope") }

// BenchmarkFutureRewrites measures query-rewrite reduction via navigation.
func BenchmarkFutureRewrites(b *testing.B) { benchExperiment(b, "future-rewrites") }

// benchCacheLookupParallel measures concurrent cache hits with the given
// lock-stripe count; comparing the single-mutex and sharded variants
// shows the contention the striping removes from the serving hot path.
func benchCacheLookupParallel(b *testing.B, shards int) {
	c := serving.NewAsyncCacheWithConfig(serving.CacheConfig{
		DailyCap: 4096, Shards: shards, QueueCap: 4096,
	})
	const nKeys = 1024
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("query-%d", i)
		c.InstallDaily(serving.Feature{Query: keys[i]})
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Lookup(keys[i%nKeys])
			i++
		}
	})
}

// BenchmarkCacheLookupParallelSingleMutex is the pre-shard baseline:
// every lookup serializes on one mutex.
func BenchmarkCacheLookupParallelSingleMutex(b *testing.B) { benchCacheLookupParallel(b, 1) }

// BenchmarkCacheLookupParallelSharded runs the same workload over the
// default lock-striped configuration.
func BenchmarkCacheLookupParallelSharded(b *testing.B) {
	benchCacheLookupParallel(b, serving.DefaultCacheShards)
}
