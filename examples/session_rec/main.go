// Session-recommendation example: COSMO-GNN vs GCE-GNN on simulated
// electronics sessions (the Table 8 headline comparison).
package main

import (
	"fmt"

	"cosmo/internal/catalog"
	"cosmo/internal/session"
)

func main() {
	// A sparse world (many products per type) is where intent knowledge
	// pays off: item co-occurrence alone cannot cover the tail.
	cat := catalog.Generate(catalog.Config{ProductsPerType: 8, Seed: 1})
	ds := session.Build(cat, session.ElectronicsConfig(900))
	fmt.Printf("electronics sessions: train=%d dev=%d test=%d items=%d\n",
		len(ds.Train), len(ds.Dev), len(ds.Test), ds.NumItems())

	cfg := session.DefaultTrainConfig()
	cfg.Epochs = 4
	cfg.MaxTrainSessions = 400

	fmt.Println("training GCE-GNN...")
	gce := session.NewGCEGNN()
	gce.Fit(ds, cfg)
	gh, gn, gm := session.Evaluate(gce, ds.Test, 10)

	fmt.Println("training COSMO-GNN (with oracle intent knowledge)...")
	cosmo := session.NewCOSMOGNN(session.OracleKnowledge(cat))
	cosmo.Fit(ds, cfg)
	ch, cn, cm := session.Evaluate(cosmo, ds.Test, 10)

	fmt.Printf("\n%-10s %8s %8s %8s\n", "method", "Hits@10", "NDCG@10", "MRR@10")
	fmt.Printf("%-10s %8.2f %8.2f %8.2f\n", "GCE-GNN", gh*100, gn*100, gm*100)
	fmt.Printf("%-10s %8.2f %8.2f %8.2f\n", "COSMO-GNN", ch*100, cn*100, cm*100)
	fmt.Printf("Δ Hits@10: %+.1f%% (paper Table 8: +5.8%% on electronics)\n", 100*(ch-gh)/gh)
}
