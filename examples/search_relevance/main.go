// Search-relevance example: reproduce the Table 6 comparison on one
// synthetic ESCI locale — cross-encoder with and without COSMO intention
// knowledge.
package main

import (
	"fmt"
	"log"

	"cosmo/internal/catalog"
	"cosmo/internal/core"
	"cosmo/internal/cosmolm"
	"cosmo/internal/relevance"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Behavior.CoBuyEvents = 6000
	cfg.Behavior.SearchEvents = 6000
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	knowledge := func(query string, p catalog.Product) string {
		out := ""
		for i, g := range res.CosmoLM.Generate(
			cosmolm.SearchContext(query, p.Title), p.Category, "", 2) {
			if i > 0 {
				out += "; "
			}
			out += g.Text
		}
		return out
	}

	gen := relevance.NewGenerator(res.Catalog, knowledge)
	ds := gen.Generate(relevance.Locale{Name: "demo", TrainPairs: 2000, TestPairs: 700, Seed: 11})

	fmt.Println("training cross-encoder (fixed encoder)...")
	cm, ci := relevance.TrainAndEvaluate(
		relevance.DefaultModelConfig(relevance.CrossEncoder, false), ds)
	fmt.Println("training cross-encoder w/ COSMO intent (fixed encoder)...")
	im, ii := relevance.TrainAndEvaluate(
		relevance.DefaultModelConfig(relevance.CrossEncoderIntent, false), ds)

	fmt.Printf("\n%-26s %10s %10s\n", "method", "MacroF1", "MicroF1")
	fmt.Printf("%-26s %10.2f %10.2f\n", "Cross-encoder", cm*100, ci*100)
	fmt.Printf("%-26s %10.2f %10.2f\n", "Cross-encoder w/ Intent", im*100, ii*100)
	fmt.Printf("Δ MacroF1: %+.1f%% (paper Table 6: +60%% with fixed encoders)\n",
		100*(im-cm)/cm)
}
