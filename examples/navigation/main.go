// Navigation example: the multi-turn navigation experience of Figure 9
// driven by a pipeline-built knowledge graph, plus a quick A/B readout.
package main

import (
	"fmt"
	"log"

	"cosmo/internal/core"
	"cosmo/internal/navigation"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Behavior.CoBuyEvents = 6000
	cfg.Behavior.SearchEvents = 6000
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Navigation reads the frozen snapshot: one Freeze per refresh, then
	// every lookup is lock-free.
	nav := navigation.NewNavigator(res.KG.Freeze(), 2)

	// Multi-turn navigation: "camping" → refinement → products.
	sess := nav.StartSession("camping")
	fmt.Println("query: camping")
	opts := sess.Options(5)
	for _, o := range opts {
		fmt.Printf("  refine -> %-35s (support %d)\n", o.Label, o.Support)
	}
	if len(opts) > 0 {
		sess.Select(opts[0].Label)
		fmt.Printf("\nselected %q (turn %d); products:\n", opts[0].Label, sess.Depth())
		for i, p := range opts[0].Products {
			if i == 5 {
				break
			}
			fmt.Printf("  %s\n", p)
		}
	}

	// A/B experiment over simulated shoppers.
	abCfg := navigation.DefaultABConfig()
	abCfg.Visitors = 300000
	result := navigation.NewExperiment(res.Catalog, nav, abCfg).Run()
	fmt.Printf("\nA/B: sales lift %+.2f%% (paper +0.7%%), engagement %.1f%% (paper ~8%%)\n",
		result.SalesLift()*100, result.EngagementRate()*100)
}
