// Serving example: the Figure 5 deployment in miniature — two-layer
// async cache, batch processing, daily refresh — driven by synthetic
// traffic, printing hit-rate and latency statistics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cosmo/internal/core"
	"cosmo/internal/serving"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Behavior.CoBuyEvents = 5000
	cfg.Behavior.SearchEvents = 5000
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	responder := serving.ResponderFunc(func(q string) serving.Feature {
		gens := res.CosmoLM.Generate("search query: "+q, "", "", 3)
		f := serving.Feature{Query: q}
		for _, g := range gens {
			f.Intents = append(f.Intents, g.Text)
			f.Relations = append(f.Relations, string(g.Relation))
		}
		return f
	})
	dep := serving.NewDeployment(serving.DeployConfig{DailyCacheCap: 256}, responder)
	dep.SetKG(res.KG.Freeze())

	// Build a Zipf-ish traffic stream from the behavior log's queries.
	var pool []string
	for _, e := range res.SampledSearchBuys {
		pool = append(pool, e.Query)
	}
	rng := rand.New(rand.NewSource(7))
	day := func(n int) {
		for i := 0; i < n; i++ {
			q := pool[int(rng.Float64()*rng.Float64()*float64(len(pool)))]
			dep.HandleQuery(q)
			if i%100 == 0 {
				dep.RunBatch(64)
			}
		}
		dep.RunBatch(1 << 20)
	}

	fmt.Println("day 1 (cold caches)...")
	day(20000)
	s1 := dep.Cache.Stats()
	fmt.Printf("  hit rate %.1f%% (yearly %d / daily %d)\n", s1.HitRate()*100, s1.YearlyHits, s1.DailyHits)

	fmt.Println("daily refresh: new model version + KG snapshot swap + yearly preload from feedback loop")
	if err := dep.DailyRefresh(responder, res.KG.Freeze(), 512); err != nil {
		log.Fatalf("daily refresh: %v", err)
	}

	fmt.Println("day 2 (warm yearly layer)...")
	day(20000)
	s2 := dep.Cache.Stats()
	p50, p99 := dep.LatencyPercentiles()
	fmt.Printf("  cumulative hit rate %.1f%%, model version %d\n", s2.HitRate()*100, dep.Version())
	fmt.Printf("  latency p50=%.1fms p99=%.1fms\n", p50, p99)
}
