// Quickstart: run the COSMO pipeline on a tiny world, inspect the
// knowledge graph, and generate knowledge with COSMO-LM.
package main

import (
	"fmt"
	"log"

	"cosmo/internal/core"
	"cosmo/internal/kg"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Behavior.CoBuyEvents = 5000
	cfg.Behavior.SearchEvents = 5000
	cfg.AnnotationBudget = 1500
	cfg.Logf = log.Printf

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	stats := res.KG.ComputeStats()
	fmt.Printf("\nknowledge graph: %d nodes, %d edges, %d relations, %d domains\n",
		stats.Nodes, stats.Edges, stats.Relations, stats.Domains)

	// What does COSMO know about the query "camping"?
	fmt.Println("\nintentions behind the query \"camping\":")
	for i, e := range res.KG.IntentionsFor(kg.QueryID("camping")) {
		if i == 5 {
			break
		}
		tail, _ := res.KG.Node(e.Tail)
		fmt.Printf("  %-14s %-35s typical=%.2f\n", e.Relation, tail.Label, e.TypicalScore)
	}

	// Generate fresh knowledge with the instruction-tuned COSMO-LM.
	p := res.Catalog.OfType("air mattress")[0]
	fmt.Printf("\nCOSMO-LM generations for query \"camping\" x %q:\n", p.Title)
	for _, g := range res.CosmoLM.Generate(
		"search query: camping | purchased: "+p.Title, p.Category, "", 3) {
		fmt.Printf("  %-14s %s (score %.2f)\n", g.Relation, g.Text, g.Score)
	}
}
